"""Enclave model: EPC isolation + code confidentiality.

Captures the SGX properties the paper's threat model (§6.2) relies on:

* **Data/code confidentiality** — EPC pages can only be read or written
  while the memory context is the owning enclave.  The (attacker-
  controlled) host and kernel get :class:`EnclaveAccessError` instead
  of bytes.  Enclave code arrives encrypted (PCL) and is decrypted
  straight into EPC.
* **Untrusted resource management** — page tables remain under kernel
  control: the attacker may flip permissions and read accessed/dirty
  bits (controlled channels), interrupt at instruction granularity
  (SGX-Step), and share the core's BTB.  None of that needs EPC read
  access.
* **LBR/PT disabled in enclave mode** — handled by
  :meth:`Core.set_enclave_mode`, toggled on enter/AEX/resume.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import EnclaveAccessError, SgxError
from ..isa.assembler import AssembledProgram
from ..memory.address import PAGE_SIZE, page_number, ranges_overlap
from ..system.process import Process
from .pcl import SealedImage


class Enclave:
    """One loaded enclave within a host process."""

    def __init__(self, name: str, image: SealedImage, key: bytes,
                 data_size: int = 1 << 20):
        self.name = name
        self.image = image
        self._key = key
        self.entry = image.entry
        #: EPC ranges as (start, end) half-open intervals
        self.epc_ranges: List[Tuple[int, int]] = []
        self.data_base: Optional[int] = None
        self.data_size = data_size
        self.host: Optional[Process] = None
        self.entered = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_program(cls, program: AssembledProgram, *,
                     name: str = "enclave",
                     key: bytes = b"enclave-sealing-key",
                     data_size: int = 1 << 20) -> "Enclave":
        """Seal an assembled program into an enclave image (PCL)."""
        image = SealedImage.seal_segments(
            list(program.segments), program.entry, key)
        return cls(name, image, key, data_size)

    # ------------------------------------------------------------------
    # loading (EADD/EINIT + PCL decryption)
    # ------------------------------------------------------------------
    def load(self, host: Process,
             data_base: int = 0x0000_7000_0000_0000) -> None:
        """Map EPC pages into ``host`` and decrypt the image into them."""
        if self.host is not None:
            raise SgxError(f"enclave {self.name} already loaded")
        self.host = host
        memory = host.memory
        for base, blob in self.image.decrypt_segments(self._key):
            memory.map_range(base, len(blob), "rx")
            self._add_epc_range(base, len(blob))
            # Write plaintext directly into EPC (loader runs "inside").
            memory.write_bytes(base, blob, check=False)
        self.data_base = data_base
        memory.map_range(data_base, self.data_size, "rw")
        self._add_epc_range(data_base, self.data_size)
        previous = memory.access_filter
        if previous is not None:
            raise SgxError("host process already has an access filter")
        memory.access_filter = self._access_filter

    def _add_epc_range(self, base: int, size: int) -> None:
        start = page_number(base) * PAGE_SIZE
        end = (page_number(base + size - 1) + 1) * PAGE_SIZE
        self.epc_ranges.append((start, end))

    # ------------------------------------------------------------------
    # EPC access control
    # ------------------------------------------------------------------
    def contains(self, address: int, size: int = 1) -> bool:
        return any(
            ranges_overlap(address, address + size, start, end)
            for start, end in self.epc_ranges
        )

    def _access_filter(self, address: int, size: int, access: str,
                       context: Optional[object]) -> None:
        if not self.contains(address, size):
            return
        if context is self:
            return
        raise EnclaveAccessError(
            f"{access} of EPC address {address:#x} from outside "
            f"enclave {self.name!r}"
        )

    # ------------------------------------------------------------------
    # provisioning (trusted side writes its own working data)
    # ------------------------------------------------------------------
    def provision(self, address: int, data: bytes) -> None:
        """Write into enclave memory as the enclave itself (e.g. the
        trusted runtime copying in sealed inputs)."""
        if self.host is None:
            raise SgxError("enclave not loaded")
        if not self.contains(address, len(data)):
            raise SgxError(
                f"provision target {address:#x} outside EPC")
        memory = self.host.memory
        saved = memory.context
        memory.context = self
        try:
            memory.write_bytes(address, data, check=False)
        finally:
            memory.context = saved

    def read_back(self, address: int, size: int) -> bytes:
        """Trusted-side read (tests / result extraction only)."""
        if self.host is None:
            raise SgxError("enclave not loaded")
        memory = self.host.memory
        saved = memory.context
        memory.context = self
        try:
            return memory.read_bytes(address, size, check=False)
        finally:
            memory.context = saved

    # ------------------------------------------------------------------
    # code page enumeration (the *kernel* legitimately knows which
    # pages exist — it mapped them — just not their contents)
    # ------------------------------------------------------------------
    def code_pages(self) -> List[int]:
        pages: List[int] = []
        for segment in self.image.segments:
            first = page_number(segment.base)
            last = page_number(segment.base + len(segment.ciphertext) - 1)
            pages.extend(range(first, last + 1))
        return sorted(set(pages))

    def __repr__(self) -> str:
        return (f"Enclave({self.name!r}, entry={self.entry:#x}, "
                f"loaded={self.host is not None})")
