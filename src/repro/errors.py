"""Exception hierarchy for the NightVision reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch simulation problems without also swallowing Python
built-ins.

All errors are **picklable**: the campaign runner transports worker
failures across process boundaries, and the default
``BaseException.__reduce__`` re-invokes ``cls(*args)``, which breaks
for the structured errors whose ``__init__`` takes extra (keyword)
arguments.  Those classes route through :func:`_rebuild_error`, which
bypasses ``__init__`` and restores ``args`` + ``__dict__`` directly.
"""

from __future__ import annotations


def _rebuild_error(cls, args, state):
    """Unpickle helper: reconstruct without calling ``cls.__init__``."""
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error


class _StructuredErrorMixin:
    """Pickle support for exceptions whose constructors take extra
    arguments beyond the message."""

    def __reduce__(self):
        return _rebuild_error, (type(self), self.args, dict(self.__dict__))


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IsaError(ReproError):
    """Base class for ISA/toolchain errors."""


class EncodeError(IsaError):
    """An instruction could not be encoded (bad operand, range overflow)."""


class DecodeError(IsaError):
    """Bytes at an address do not decode to a valid instruction."""


class AssemblerError(IsaError):
    """Assembly-level problem: unknown label, misuse of a directive, ..."""


class MemoryError_(ReproError):
    """Base class for memory-system errors (named to avoid shadowing)."""


class PageFault(_StructuredErrorMixin, MemoryError_):
    """Access to an unmapped page or one lacking the needed permission.

    Page faults are *architectural events*: the kernel model catches them
    to implement controlled-channel attacks and demand mapping.
    """

    def __init__(self, address: int, access: str, message: str = ""):
        self.address = address
        self.access = access  # "read" | "write" | "execute"
        super().__init__(
            message or f"page fault: {access} at {address:#x}"
        )


class ProtectionFault(_StructuredErrorMixin, MemoryError_):
    """An access that the memory model refuses outright (e.g. EPC read
    from outside the owning enclave).

    Like :class:`PageFault` it carries the faulting address and access
    kind so handlers can triage without parsing the message; both
    default to ``None``/``""`` for refusals without a single address.
    """

    def __init__(self, message: str = "", *,
                 address: int = None, access: str = ""):
        self.address = address
        self.access = access
        if not message and address is not None:
            message = f"protection fault: {access or 'access'} " \
                      f"at {address:#x}"
        super().__init__(message)


class CpuError(ReproError):
    """Base class for CPU-model errors."""


class HaltError(CpuError):
    """The core executed ``hlt`` outside of a context that allows it."""


class ExecutionLimitExceeded(CpuError):
    """A run exceeded its instruction or cycle budget (runaway guard)."""


class SimulationTimeout(_StructuredErrorMixin, ExecutionLimitExceeded):
    """A simulation run blew its step budget or wall-clock deadline.

    Subclasses :class:`ExecutionLimitExceeded` so existing runaway
    guards keep catching it; carries the budget figures so the
    campaign runner can classify the failure without parsing text.
    ``deadline`` is True when a wall-clock deadline (rather than a
    step budget) expired.
    """

    def __init__(self, message: str, *, budget: int = 0,
                 executed: int = 0, deadline: bool = False):
        self.budget = budget
        self.executed = executed
        self.deadline = deadline
        super().__init__(message)


class InvalidInstruction(CpuError):
    """The core fetched bytes that do not decode (usually a wild jump)."""


class VectorizationError(CpuError):
    """A lockstep many-seeds group lost the invariant that makes
    sharing decode state sound (diverging code generations, mismatched
    lane setup).  See :mod:`repro.cpu.vector`."""


class SystemError_(ReproError):
    """Base class for kernel/scheduler errors."""


class NoRunnableProcess(SystemError_):
    """The scheduler has nothing left to run."""


class SgxError(ReproError):
    """Base class for enclave-model errors."""


class EnclaveAccessError(SgxError):
    """Non-enclave code touched EPC memory."""


class AttackError(ReproError):
    """Base class for NightVision attack-layer errors."""


class CalibrationError(AttackError):
    """The probe threshold calibration failed to separate hit from miss."""


class MeasurementError(AttackError):
    """Base class for resilient-measurement-policy errors."""


class MeasurementUnstable(_StructuredErrorMixin, MeasurementError):
    """A probe reading stayed unresolvable (missing LBR records /
    constraint violations) after the policy's retries.

    Carries the per-range resolution state so callers can degrade
    gracefully instead of discarding the whole measurement.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 unresolved=()):  # unresolved: range indices
        self.attempts = attempts
        self.unresolved = tuple(unresolved)
        super().__init__(message)


class BudgetExhausted(_StructuredErrorMixin, MeasurementError):
    """A bounded retry/probe budget ran out before the measurement
    (or extraction) converged."""

    def __init__(self, message: str, *, budget: int = 0,
                 spent: int = 0):
        self.budget = budget
        self.spent = spent
        super().__init__(message)


class CampaignError(ReproError):
    """Base class for campaign-runner errors (bad resume id, manifest
    schema mismatch, unknown job kind, ...)."""


class ArtifactCorrupt(_StructuredErrorMixin, CampaignError):
    """A persisted artifact failed validation on load (checksum
    mismatch, truncation, invalid JSON, wrong schema tag) and could not
    be recovered from its write-ahead journal.  The damaged file has
    already been quarantined to ``<name>.corrupt`` (path recorded in
    ``quarantined``) so forensics survive and a retried load does not
    trip over the same bytes."""

    def __init__(self, message: str, *, path: str = "",
                 reason: str = "", quarantined: str = ""):
        self.path = path
        self.reason = reason
        self.quarantined = quarantined
        super().__init__(message)


class DiskFaultError(_StructuredErrorMixin, CampaignError):
    """An injected disk fault fired (torn write, ENOSPC, fsync
    failure) — the storage layer behaves as if the process died
    mid-checkpoint.  Carries the fault kind and path so drills can
    assert exactly which write was struck."""

    def __init__(self, message: str, *, path: str = "",
                 kind: str = "", errno_: int = 0):
        self.path = path
        self.kind = kind
        self.errno_ = errno_
        super().__init__(message)


class WorkerCrashed(_StructuredErrorMixin, CampaignError):
    """A subprocess worker died without delivering a result (SIGKILL,
    segfault, interpreter abort).  Treated as a transient failure by
    the retry policy."""

    def __init__(self, message: str, *, exitcode: int = None):
        self.exitcode = exitcode
        super().__init__(message)


class ServiceError(CampaignError):
    """Base class for sharded-campaign-service errors (bad payload,
    unknown campaign, scheduler misconfiguration, ...)."""


class AdmissionRejected(_StructuredErrorMixin, ServiceError):
    """The service's bounded submission queue is full: the campaign is
    explicitly **rejected** (HTTP 429) instead of queued — scheduler
    memory must stay bounded under a sustained over-capacity submit
    loop.  Carries the observed depth so clients can back off."""

    def __init__(self, message: str, *, queue_depth: int = 0,
                 pending: int = 0):
        self.queue_depth = queue_depth
        self.pending = pending
        super().__init__(message)


class ServiceUnavailable(_StructuredErrorMixin, ServiceError):
    """The service stayed unreachable (connection errors) or kept
    shedding load (HTTP 503) through the client's whole bounded
    retry budget.  Picklable so campaign workers can transport it
    across process boundaries like every other error."""

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: str = ""):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(message)


class ShardQuarantined(_StructuredErrorMixin, ServiceError):
    """A shard tripped its circuit breaker and was quarantined; raised
    only where callers asked for strict (non-degraded) completion."""

    def __init__(self, message: str, *, shard_id: str = "",
                 lost_jobs=()):
        self.shard_id = shard_id
        self.lost_jobs = tuple(lost_jobs)
        super().__init__(message)


class CompileError(ReproError):
    """Base class for the mini-compiler."""


class ParseError(CompileError):
    """The DSL source text did not parse."""


class DivideError(CpuError):
    """Division by zero or quotient overflow in ``div``."""
