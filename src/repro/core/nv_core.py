"""NV-Core: the BTB Prime+Probe primitive (paper §4.1, Fig. 6).

``NV-Core(PWs, p)`` answers: *did fragment p of the victim's execution
fetch instruction bytes overlapping any of the monitored PW ranges?*

Mechanics (all through architecturally-legal attacker behaviour):

* **Prime** — execute the chained PW snippet; every terminating jump
  allocates/refreshes a BTB entry indexed by the monitored range's
  last byte.
* *(victim fragment runs — driven by NV-U or NV-S, not by NV-Core)*
* **Probe** — execute the snippet again and read the attacker's own
  LBR.  Two observable signatures, matching Fig. 5:

  - overlap cases (3)/(4): the victim's non-control-transfer fetches
    false-hit the attacker's entry and *deallocate* it (Takeaway 1), so
    the probe jump mispredicts — penalty visible in the elapsed cycles
    of the **next** LBR record;
  - overlap cases (1)/(2): the victim's taken branch allocated its own
    entry at a smaller offset inside the range, so the probe fetch
    false-hits *it* — penalty visible in the probe jump's **own**
    record.

Detection is a threshold test against calibrated no-victim baselines,
exactly the differential-timing discipline the paper uses (§2.3); with
``timing_noise`` configured on the core it is a genuinely noisy
classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.core import StopReason
from ..errors import AttackError, CalibrationError
from ..system.kernel import Kernel
from ..system.process import Process
from .pw import ProbeCode, PwBuilder, PwRange


@dataclass
class ProbeReading:
    """Raw per-range measurements from one probe run (debugging)."""

    own_elapsed: List[Optional[int]]
    next_elapsed: List[Optional[int]]
    mispredicted: List[bool]
    prev_mispredicted: List[bool]
    matched: List[bool]


class ProbeSession:
    """One monitored PW set: snippet mapped, baselines calibrated."""

    def __init__(self, nv_core: "NvCore", probe_code: ProbeCode):
        self.nv = nv_core
        self.code = probe_code
        self.baseline_own: List[float] = []
        self.baseline_next: List[float] = []
        probe_code.program.load_into(self.nv.attacker.memory)
        self._calibrate()

    # ------------------------------------------------------------------
    def _run_snippet(self) -> None:
        attacker = self.nv.attacker
        attacker.state.rip = self.code.entry
        result = self.nv.kernel.run_slice(attacker)
        if result.reason is not StopReason.HALT:
            raise AttackError(
                f"probe snippet ended with {result.reason}, not HALT")

    def _read_lbr(self) -> Tuple[List[Optional[int]],
                                 List[Optional[int]],
                                 List[bool], List[bool]]:
        records = self.nv.kernel.core.lbr.records()
        index_of: Dict[int, int] = {}
        for position, record in enumerate(records):
            index_of.setdefault(record.from_pc, position)
        own: List[Optional[int]] = []
        nxt: List[Optional[int]] = []
        mispred: List[bool] = []
        prev_mispred: List[bool] = []
        for jmp_pc in self.code.jmp_pcs:
            position = index_of.get(jmp_pc)
            if position is None:
                own.append(None)
                nxt.append(None)
                mispred.append(True)
                prev_mispred.append(False)
                continue
            own.append(records[position].elapsed_cycles)
            nxt.append(records[position + 1].elapsed_cycles
                       if position + 1 < len(records) else None)
            mispred.append(records[position].mispredicted)
            prev_mispred.append(records[position - 1].mispredicted
                                if position > 0 else False)
        return own, nxt, mispred, prev_mispred

    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Allocate/refresh the BTB entries for every monitored range."""
        self._run_snippet()

    def _probe_raw(self):
        self.nv.kernel.core.lbr.clear()
        self._run_snippet()
        return self._read_lbr()

    def probe(self) -> List[bool]:
        """Measure and classify each monitored range (True = the
        victim's execution overlapped it)."""
        return self.probe_detailed().matched

    def probe_detailed(self) -> ProbeReading:
        """One probe run, classified.

        Two detectors (``NvCore.detector``):

        * ``"hybrid"`` (default) — a range matched if its probe jump
          itself mispredicted (entry deallocated: Fig. 5 cases 3/4,
          surfaced by the LBR MISPRED bit) or its own elapsed cycles
          are elevated while the *preceding* record predicted fine (a
          false hit on a victim-allocated entry inside the range:
          cases 1/2; the veto keeps an upstream glue mispredict from
          being misattributed).
        * ``"cycles"`` — pure elapsed-cycle thresholds on the jump's
          own record and its successor, the paper's §2.3 methodology;
          slightly blurrier at chained-PW boundaries.
        """
        own, nxt, mispred, prev_mispred = self._probe_raw()
        delta = self.nv.threshold_delta
        matched: List[bool] = []
        for index in range(len(self.code.ranges)):
            own_elevated = (
                own[index] is not None
                and own[index] - self.baseline_own[index] > delta)
            next_elevated = (
                nxt[index] is not None
                and nxt[index] - self.baseline_next[index] > delta)
            if self.nv.detector == "cycles":
                hit = own_elevated or next_elevated \
                    or own[index] is None
            else:
                hit = mispred[index] or (
                    own_elevated and not prev_mispred[index])
            matched.append(hit)
        return ProbeReading(own, nxt, mispred, prev_mispred, matched)

    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """Learn no-victim baselines: warm up, then average a few
        clean prime->probe rounds."""
        rounds = self.nv.calibration_rounds
        self.prime()                      # cold run: allocations
        sums_own = [0.0] * len(self.code.ranges)
        sums_next = [0.0] * len(self.code.ranges)
        for _ in range(rounds):
            own, nxt, _, _ = self._probe_raw()
            for index in range(len(self.code.ranges)):
                if own[index] is None or nxt[index] is None:
                    raise CalibrationError(
                        f"range {self.code.ranges[index]} produced no "
                        f"LBR record during calibration")
                sums_own[index] += own[index]
                sums_next[index] += nxt[index]
        self.baseline_own = [total / rounds for total in sums_own]
        self.baseline_next = [total / rounds for total in sums_next]


class NvCore:
    """Factory/owner of probe sessions for one attacker process."""

    def __init__(self, kernel: Kernel,
                 attacker: Optional[Process] = None, *,
                 alias_index: int = 2,
                 calibration_rounds: int = 3,
                 threshold_delta: Optional[float] = None,
                 detector: str = "hybrid"):
        if detector not in ("hybrid", "cycles"):
            raise AttackError(f"unknown detector {detector!r}")
        self.kernel = kernel
        config = kernel.core.config
        if attacker is None:
            attacker = Process(name="nv-attacker")
            kernel.add_process(attacker)
        self.attacker = attacker
        self.builder = PwBuilder(config.tag_keep_bits,
                                 alias_index=alias_index)
        self.calibration_rounds = calibration_rounds
        self.detector = detector
        self.threshold_delta = (
            threshold_delta if threshold_delta is not None
            else config.squash_penalty * 0.5)

    def monitor(self, ranges: Sequence[PwRange]) -> ProbeSession:
        """Build, map and calibrate a probe for ``ranges``."""
        return ProbeSession(self, self.builder.build(ranges))

    def monitor_range(self, start: int, end: int) -> ProbeSession:
        return self.monitor([PwRange(start, end)])
