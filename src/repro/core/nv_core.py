"""NV-Core: the BTB Prime+Probe primitive (paper §4.1, Fig. 6).

``NV-Core(PWs, p)`` answers: *did fragment p of the victim's execution
fetch instruction bytes overlapping any of the monitored PW ranges?*

Mechanics (all through architecturally-legal attacker behaviour):

* **Prime** — execute the chained PW snippet; every terminating jump
  allocates/refreshes a BTB entry indexed by the monitored range's
  last byte.
* *(victim fragment runs — driven by NV-U or NV-S, not by NV-Core)*
* **Probe** — execute the snippet again and read the attacker's own
  LBR.  Two observable signatures, matching Fig. 5:

  - overlap cases (3)/(4): the victim's non-control-transfer fetches
    false-hit the attacker's entry and *deallocate* it (Takeaway 1), so
    the probe jump mispredicts — penalty visible in the elapsed cycles
    of the **next** LBR record;
  - overlap cases (1)/(2): the victim's taken branch allocated its own
    entry at a smaller offset inside the range, so the probe fetch
    false-hits *it* — penalty visible in the probe jump's **own**
    record.

Detection is a threshold test against calibrated no-victim baselines,
exactly the differential-timing discipline the paper uses (§2.3); with
``timing_noise`` configured on the core it is a genuinely noisy
classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..cpu.core import StopReason
from ..errors import AttackError, CalibrationError, MeasurementUnstable
from ..system.kernel import Kernel
from ..system.process import Process
from .measurement import (MeasuredProbe, MeasurementPolicy, RangeStatus,
                          apply_constraint, summarize)
from .pw import ProbeCode, PwBuilder, PwRange


@dataclass
class ProbeReading:
    """Raw per-range measurements from one probe run (debugging)."""

    own_elapsed: List[Optional[int]]
    next_elapsed: List[Optional[int]]
    mispredicted: List[bool]
    prev_mispredicted: List[bool]
    matched: List[bool]
    #: True where the probe jump produced an LBR record at all; the
    #: naive ``matched`` treats an absent record as a hit, the policy
    #: path treats it as :attr:`RangeStatus.UNKNOWN`
    present: List[bool] = None  # type: ignore[assignment]


def _stddev(samples: Sequence[float]) -> float:
    if len(samples) < 2:
        return 0.0
    mean = sum(samples) / len(samples)
    return (sum((s - mean) ** 2 for s in samples)
            / (len(samples) - 1)) ** 0.5


def _reject_outliers(samples: Sequence[int],
                     sigma: float) -> List[int]:
    """Drop samples further than ``sigma`` stddevs from the median."""
    if len(samples) < 3:
        return list(samples)
    ordered = sorted(samples)
    median = ordered[len(ordered) // 2]
    spread = _stddev(samples)
    if spread == 0.0:
        return list(samples)
    kept = [s for s in samples if abs(s - median) <= sigma * spread]
    return kept or list(samples)


class ProbeSession:
    """One monitored PW set: snippet mapped, baselines calibrated.

    With a :class:`~repro.core.measurement.MeasurementPolicy` attached
    (either here or on the owning :class:`NvCore`) the session
    calibrates robustly — dropped records are re-sampled instead of
    aborting, jitter outliers are rejected, thresholds widen with
    observed noise — and exposes :meth:`probe_measured`, the
    confidence-tagged resilient probe path.
    """

    #: resumptions tolerated per snippet run before giving up
    MAX_PREEMPTIONS = 32

    def __init__(self, nv_core: "NvCore", probe_code: ProbeCode,
                 policy: Optional[MeasurementPolicy] = None):
        self.nv = nv_core
        self.code = probe_code
        self.policy = policy if policy is not None else nv_core.policy
        self.baseline_own: List[float] = []
        self.baseline_next: List[float] = []
        #: per-range detection thresholds (uniform without a policy,
        #: widened per-range by calibration noise with one)
        self.delta_own: List[float] = []
        self.delta_next: List[float] = []
        #: snippet executions spent so far (calibration included)
        self.attempts = 0
        probe_code.program.load_into(self.nv.attacker.memory)
        if self.policy is not None:
            self._calibrate_robust(self.policy)
        else:
            self._calibrate()

    # ------------------------------------------------------------------
    def _run_snippet(self) -> None:
        attacker = self.nv.attacker
        attacker.state.rip = self.code.entry
        self.attempts += 1
        telemetry.count("core.probe.attempts")
        for _ in range(self.MAX_PREEMPTIONS):
            result = self.nv.kernel.run_slice(attacker)
            if result.reason is StopReason.HALT:
                return
            if result.reason is StopReason.RETIRE_LIMIT:
                # Involuntary preemption sliced the snippet; resume
                # where the timer interrupt landed.
                continue
            raise AttackError(
                f"probe snippet ended with {result.reason}, not HALT")
        raise AttackError(
            f"probe snippet preempted more than "
            f"{self.MAX_PREEMPTIONS} times")

    def _read_lbr(self) -> Tuple[List[Optional[int]],
                                 List[Optional[int]],
                                 List[bool], List[bool], List[bool]]:
        records = self.nv.kernel.core.lbr.records()
        index_of: Dict[int, int] = {}
        for position, record in enumerate(records):
            index_of.setdefault(record.from_pc, position)
        own: List[Optional[int]] = []
        nxt: List[Optional[int]] = []
        mispred: List[bool] = []
        prev_mispred: List[bool] = []
        present: List[bool] = []
        for jmp_pc in self.code.jmp_pcs:
            position = index_of.get(jmp_pc)
            if position is None:
                # No record for this probe jump (ring-buffer churn, or
                # a dropped record under fault injection).  The naive
                # detector keeps its historical reading of this as a
                # mispredict; the policy path uses ``present`` to
                # classify it honestly as UNKNOWN.
                own.append(None)
                nxt.append(None)
                mispred.append(True)
                prev_mispred.append(False)
                present.append(False)
                continue
            own.append(records[position].elapsed_cycles)
            nxt.append(records[position + 1].elapsed_cycles
                       if position + 1 < len(records) else None)
            mispred.append(records[position].mispredicted)
            prev_mispred.append(records[position - 1].mispredicted
                                if position > 0 else False)
            present.append(True)
        return own, nxt, mispred, prev_mispred, present

    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Allocate/refresh the BTB entries for every monitored range."""
        self._run_snippet()

    def _probe_raw(self):
        self.nv.kernel.core.lbr.clear()
        self._run_snippet()
        return self._read_lbr()

    def probe(self) -> List[bool]:
        """Measure and classify each monitored range (True = the
        victim's execution overlapped it)."""
        return self.probe_detailed().matched

    def probe_detailed(self) -> ProbeReading:
        """One probe run, classified.

        Two detectors (``NvCore.detector``):

        * ``"hybrid"`` (default) — a range matched if its probe jump
          itself mispredicted (entry deallocated: Fig. 5 cases 3/4,
          surfaced by the LBR MISPRED bit) or its own elapsed cycles
          are elevated while the *preceding* record predicted fine (a
          false hit on a victim-allocated entry inside the range:
          cases 1/2; the veto keeps an upstream glue mispredict from
          being misattributed).
        * ``"cycles"`` — pure elapsed-cycle thresholds on the jump's
          own record and its successor, the paper's §2.3 methodology;
          slightly blurrier at chained-PW boundaries.
        """
        telemetry.count("core.probe.readings")
        own, nxt, mispred, prev_mispred, present = self._probe_raw()
        matched: List[bool] = []
        for index in range(len(self.code.ranges)):
            own_elevated = (
                own[index] is not None
                and own[index] - self.baseline_own[index]
                > self.delta_own[index])
            next_elevated = (
                nxt[index] is not None
                and nxt[index] - self.baseline_next[index]
                > self.delta_next[index])
            if self.nv.detector == "cycles":
                hit = own_elevated or next_elevated \
                    or own[index] is None
            else:
                hit = mispred[index] or (
                    own_elevated and not prev_mispred[index])
            matched.append(hit)
        return ProbeReading(own, nxt, mispred, prev_mispred, matched,
                            present)

    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """Learn no-victim baselines: warm up, then average a few
        clean prime->probe rounds."""
        rounds = self.nv.calibration_rounds
        self.prime()                      # cold run: allocations
        sums_own = [0.0] * len(self.code.ranges)
        sums_next = [0.0] * len(self.code.ranges)
        for _ in range(rounds):
            own, nxt, _, _, _ = self._probe_raw()
            for index in range(len(self.code.ranges)):
                if own[index] is None or nxt[index] is None:
                    raise CalibrationError(
                        f"range {self.code.ranges[index]} produced no "
                        f"LBR record during calibration")
                sums_own[index] += own[index]
                sums_next[index] += nxt[index]
        self.baseline_own = [total / rounds for total in sums_own]
        self.baseline_next = [total / rounds for total in sums_next]
        delta = self.nv.threshold_delta
        self.delta_own = [delta] * len(self.code.ranges)
        self.delta_next = [delta] * len(self.code.ranges)

    def _calibrate_robust(self, policy: MeasurementPolicy) -> None:
        """Policy-driven calibration that survives fault injection.

        Dropped records are simply re-sampled (up to
        ``calibration_rounds * calibration_retry_factor`` total rounds)
        instead of aborting the session, jitter spikes are rejected as
        outliers around the per-range median, and the detection
        threshold is widened to ``threshold_sigma`` standard deviations
        whenever the substrate is noisier than the static default
        assumes.
        """
        count = len(self.code.ranges)
        self.prime()                      # cold run: allocations
        samples_own: List[List[int]] = [[] for _ in range(count)]
        samples_next: List[List[int]] = [[] for _ in range(count)]
        max_rounds = (policy.calibration_rounds
                      * policy.calibration_retry_factor)
        for round_index in range(max_rounds):
            own, nxt, _, _, _ = self._probe_raw()
            for index in range(count):
                if own[index] is not None:
                    samples_own[index].append(own[index])
                if nxt[index] is not None:
                    samples_next[index].append(nxt[index])
            if round_index + 1 >= policy.calibration_rounds and all(
                    len(samples_own[i]) >= policy.min_calibration_samples
                    and len(samples_next[i])
                    >= policy.min_calibration_samples
                    for i in range(count)):
                break
        static_delta = self.nv.threshold_delta
        self.baseline_own, self.delta_own = [], []
        self.baseline_next, self.delta_next = [], []
        for index in range(count):
            for samples, baselines, deltas in (
                    (samples_own[index], self.baseline_own,
                     self.delta_own),
                    (samples_next[index], self.baseline_next,
                     self.delta_next)):
                if len(samples) < policy.min_calibration_samples:
                    raise CalibrationError(
                        f"range {self.code.ranges[index]} produced "
                        f"{len(samples)} usable LBR records in "
                        f"{max_rounds} calibration rounds "
                        f"(needed {policy.min_calibration_samples})")
                kept = _reject_outliers(samples, policy.outlier_sigma)
                mean = sum(kept) / len(kept)
                baselines.append(mean)
                deltas.append(max(static_delta,
                                  policy.threshold_sigma * _stddev(kept)))

    # ------------------------------------------------------------------
    # resilient measurement (policy path)
    # ------------------------------------------------------------------
    def _classify(self, reading: ProbeReading) -> List[RangeStatus]:
        """Map one reading onto honest per-range statuses (the hybrid
        detector's logic, with absent records kept as UNKNOWN)."""
        statuses: List[RangeStatus] = []
        for index in range(len(self.code.ranges)):
            if not reading.present[index]:
                statuses.append(RangeStatus.UNKNOWN)
                continue
            if reading.mispredicted[index]:
                statuses.append(RangeStatus.HIT_STRONG)
                continue
            own_elevated = (
                reading.own_elapsed[index] - self.baseline_own[index]
                > self.delta_own[index])
            if own_elevated and not reading.prev_mispredicted[index]:
                statuses.append(RangeStatus.HIT_WEAK)
            else:
                statuses.append(RangeStatus.MISS)
        return statuses

    def probe_measured(self,
                       policy: Optional[MeasurementPolicy] = None
                       ) -> MeasuredProbe:
        """Resilient probe: classify, vote, constrain, retry, degrade.

        The victim's signal is one-shot — the first probe run consumes
        it — so resilience is layered accordingly:

        1. classify the first reading honestly (absent record =
           UNKNOWN, not the naive path's implicit hit);
        2. vote down *weak* hits that recur across ``votes`` follow-up
           readings (a consumed real signal cannot recur; ambient
           jitter does);
        3. resolve UNKNOWNs from the structural ``constraint`` (e.g.
           exactly one branch arm ran);
        4. spend the bounded ``max_retries`` budget (with exponential
           step-back re-primes) confirming the measurement path is
           healthy again, degrading leftover UNKNOWNs to
           low-confidence misses;
        5. if records are *still* missing: ``fail_hard`` raises
           :class:`~repro.errors.MeasurementUnstable`, otherwise the
           ranges stay UNKNOWN with rock-bottom confidence and the
           probe is flagged unstable.
        """
        policy = policy if policy is not None else self.policy
        if policy is None:
            raise AttackError(
                "probe_measured requires a MeasurementPolicy")
        start_attempts = self.attempts
        reading = self.probe_detailed()
        statuses = self._classify(reading)

        # A dropped record takes its mispredict *bit* with it, but the
        # squash penalty still inflates the elapsed cycles of whatever
        # record follows — so any weak (cycles-only) hit observed
        # alongside a dropped record is likely that orphaned penalty,
        # not a victim false hit.  Demote it and let the constraint
        # work from the surviving evidence.
        if any(s is RangeStatus.UNKNOWN for s in statuses):
            statuses = [RangeStatus.MISS_DEGRADED
                        if s is RangeStatus.HIT_WEAK else s
                        for s in statuses]

        # -- 2: majority-vote ambient jitter out of weak hits ----------
        weak = [i for i, s in enumerate(statuses)
                if s is RangeStatus.HIT_WEAK]
        if weak and policy.votes > 1:
            recurrences = [0] * len(statuses)
            extra = policy.votes - 1
            for _ in range(extra):
                follow = self.probe_detailed()
                follow_statuses = self._classify(follow)
                for i in weak:
                    if follow_statuses[i] is RangeStatus.HIT_WEAK:
                        recurrences[i] += 1
            for i in weak:
                if 2 * recurrences[i] >= extra:
                    # Elevation persists with the signal long consumed:
                    # ambient jitter, not a victim false hit.
                    statuses[i] = RangeStatus.MISS_DEGRADED

        # -- 3: structural prior ---------------------------------------
        statuses = apply_constraint(statuses, policy.constraint)

        # -- 4: bounded retry with exponential step-back ---------------
        unresolved = [i for i, s in enumerate(statuses)
                      if s is RangeStatus.UNKNOWN]
        retries = 0
        while unresolved and retries < policy.max_retries:
            for _ in range(policy.backoff_base << retries):
                self.prime()              # settle the substrate
            retries += 1
            follow = self.probe_detailed()
            for i in unresolved:
                if follow.present[i]:
                    # The measurement path works again; the original
                    # sample is gone for good (signal consumed), so
                    # record an honest low-confidence miss.
                    statuses[i] = RangeStatus.MISS_DEGRADED
            statuses = apply_constraint(statuses, policy.constraint)
            unresolved = [i for i, s in enumerate(statuses)
                          if s is RangeStatus.UNKNOWN]

        attempts = self.attempts - start_attempts
        tel = telemetry.current()
        if tel is not None:
            tel.count("core.probe.measured")
            if retries:
                tel.count("core.probe.retries", retries)
            degraded = sum(1 for s in statuses
                           if s is RangeStatus.MISS_DEGRADED)
            inferred = sum(1 for s in statuses
                           if s is RangeStatus.HIT_INFERRED)
            if degraded:
                tel.count("core.probe.degraded", degraded)
            if inferred:
                tel.count("core.probe.inferred", inferred)
            if unresolved:
                tel.count("core.probe.unstable")
        if unresolved:
            if policy.fail_hard:
                raise MeasurementUnstable(
                    f"{len(unresolved)} range(s) unresolved after "
                    f"{attempts} probe attempts",
                    attempts=attempts, unresolved=unresolved)
            return summarize(statuses, attempts, stable=False)
        return summarize(statuses, attempts, stable=True)


class NvCore:
    """Factory/owner of probe sessions for one attacker process."""

    def __init__(self, kernel: Kernel,
                 attacker: Optional[Process] = None, *,
                 alias_index: int = 2,
                 calibration_rounds: int = 3,
                 threshold_delta: Optional[float] = None,
                 detector: str = "hybrid",
                 policy: Optional[MeasurementPolicy] = None):
        if detector not in ("hybrid", "cycles"):
            raise AttackError(f"unknown detector {detector!r}")
        self.kernel = kernel
        config = kernel.core.config
        if attacker is None:
            attacker = Process(name="nv-attacker")
            kernel.add_process(attacker)
        self.attacker = attacker
        self.builder = PwBuilder(config.tag_keep_bits,
                                 alias_index=alias_index)
        self.calibration_rounds = calibration_rounds
        self.detector = detector
        #: default measurement policy inherited by new sessions;
        #: ``None`` keeps the historical fail-fast behaviour
        self.policy = policy
        self.threshold_delta = (
            threshold_delta if threshold_delta is not None
            else config.squash_penalty * 0.5)

    def monitor(self, ranges: Sequence[PwRange], *,
                policy: Optional[MeasurementPolicy] = None
                ) -> ProbeSession:
        """Build, map and calibrate a probe for ``ranges``."""
        return ProbeSession(self, self.builder.build(ranges),
                            policy=policy)

    def monitor_range(self, start: int, end: int) -> ProbeSession:
        return self.monitor([PwRange(start, end)])
