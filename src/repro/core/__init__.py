"""NightVision — the paper's primary contribution.

* :class:`NvCore` / :class:`ProbeSession` — the BTB Prime+Probe
  primitive over attacker-built prediction-window snippets (§4.1);
* :class:`NvUser` — fragment-granular monitoring for the user-level
  attacker (§4.2) and :class:`ControlFlowLeakAttack`, use case 1 (§5);
* :class:`NvSupervisor` — single-step-granular monitoring with full
  dynamic-PC-trace extraction via PW traversal (§4.3, §6.3).
"""

from .cfl import CflResult, ControlFlowLeakAttack, Direction, arm_pw
from .measurement import (DEFAULT_POLICY, MeasuredProbe,
                          MeasurementPolicy, RangeStatus)
from .nv_core import NvCore, ProbeReading, ProbeSession
from .nv_supervisor import NvSupervisor
from .nv_user import FragmentObservation, NvUser, NvUserResult
from .pw import ProbeCode, PwBuilder, PwRange, page_pws
from .trace import ExtractedTrace, StepRecord
from .traversal import PwTraversal, StepSearch

__all__ = [
    "CflResult",
    "ControlFlowLeakAttack",
    "DEFAULT_POLICY",
    "Direction",
    "ExtractedTrace",
    "FragmentObservation",
    "MeasuredProbe",
    "MeasurementPolicy",
    "NvCore",
    "NvSupervisor",
    "NvUser",
    "NvUserResult",
    "ProbeCode",
    "ProbeReading",
    "ProbeSession",
    "PwBuilder",
    "PwRange",
    "PwTraversal",
    "RangeStatus",
    "StepRecord",
    "StepSearch",
    "arm_pw",
    "page_pws",
]
