"""PW traversal: binary search for each dynamic instruction's base
address (paper §6.3, Fig. 10).

Two sweep strategies find each step's 32-byte block:

* ``"paper"`` — exactly Fig. 10: the 128 disjoint 32-byte PWs of the
  step's code page are tested ``N`` at a time, ascending, across
  ``128/N`` full enclave re-executions.
* ``"adaptive"`` (default) — same primitive, smarter scheduling: each
  step first probes the blocks near the *previous step's* hit (code is
  local), then globally hot blocks, then the untested remainder.  A
  hit in block ``b`` is only *confirmed* as the lowest once ``b - 32``
  has tested unmatched (a fetch spans at most two adjacent blocks).
  Most steps confirm within one or two runs.

After the sweep, each step narrows up to **two candidate lanes**: the
lowest matched block, plus the next non-adjacent matched block if one
exists.  Two lanes arise from the §6.3 speculation effect: when the
instructions past the interrupt speculatively execute a *predicted
taken* branch, the fetch continues at its target and the target's
block matches too, so the step reports both its own PC and the PC a
*later* step will retire at.  Every lane is narrowed (pass-per-split,
one enclave re-execution each) down to a 2-byte PW, then resolved to
the byte with a final point probe.

The cross-step disambiguation is the paper's: a lane value that
reappears as a *later* nearby step's resolution is the speculative
artifact and is discarded ("comparing the two PC sets and ruling out
the repeated candidates", §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AttackError
from ..memory.address import BLOCK_SIZE, PAGE_SIZE
from .pw import PwRange

#: how far ahead (in steps) the disambiguation looks for a repeat —
#: a speculative artifact retires at most ~spec_lookahead units later
DISAMBIGUATION_WINDOW = 14


@dataclass
class _Lane:
    """One candidate being narrowed for a step."""

    candidate: PwRange
    resolved: Optional[int] = None


@dataclass
class StepSearch:
    """Search state for one dynamic instruction (one step)."""

    #: candidate page bases (from the controlled channel); usually one,
    #: two around page transitions/straddling instructions
    page_bases: List[int]
    #: block starts already tested during the sweep
    tested: Set[int] = field(default_factory=set)
    #: block starts that matched during the sweep
    matched_blocks: Set[int] = field(default_factory=set)
    #: candidate lanes (populated when the sweep finishes; <= 2)
    lanes: List[_Lane] = field(default_factory=list)
    #: every PW that matched, by pass (diagnostics)
    matched_history: List[List[PwRange]] = field(default_factory=list)
    #: final disambiguated base PC
    resolved: Optional[int] = None
    #: sweep finished for this step (confirmed or exhausted)
    sweep_done: bool = False

    @property
    def lowest_matched(self) -> Optional[int]:
        return min(self.matched_blocks) if self.matched_blocks else None

    def all_blocks(self) -> List[int]:
        out: List[int] = []
        for base in self.page_bases:
            out.extend(range(base, base + PAGE_SIZE, BLOCK_SIZE))
        return out


class PwTraversal:
    """Drives the per-step binary search across NV-S runs.

    The orchestrator (NV-S) repeatedly asks :meth:`queries_for` what to
    monitor at each step of the *next* run, performs the run, and feeds
    measurements back via :meth:`record`.
    """

    def __init__(self, num_steps: int,
                 page_bases: Sequence[Sequence[int]], *,
                 pws_per_call: int = 8,
                 strategy: str = "adaptive",
                 restrict_to: Optional[Set[int]] = None,
                 tested_preseed: Optional[
                     Sequence[Set[int]]] = None):
        if len(page_bases) != num_steps:
            raise AttackError("page_bases must have one entry per step")
        if pws_per_call < 1:
            raise AttackError("pws_per_call must be >= 1")
        if strategy not in ("adaptive", "paper"):
            raise AttackError(f"unknown sweep strategy {strategy!r}")
        self.num_steps = num_steps
        self.pws_per_call = pws_per_call
        self.strategy = strategy
        #: only these step indices are measured (None = all); used by
        #: the second-round sweep over suspicious steps
        self.restrict_to = restrict_to
        self.steps = [StepSearch(page_bases=sorted(bases))
                      for bases in page_bases]
        if tested_preseed is not None:
            for search, seen in zip(self.steps, tested_preseed):
                search.tested = set(seen)
        self._sweep_cursor = 0            # paper strategy only
        # phases: sweep -> narrow -> final0 -> final1 -> done
        self._phase = "sweep"
        self._narrow_rounds = 0
        #: hard cap on narrowing rounds (noise could stall a step)
        self.max_narrow_rounds = 16
        #: blocks that matched for any step (locality prior)
        self._hot_blocks: Dict[int, int] = {}
        self._last_hit_block: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        return self._phase

    @property
    def finished(self) -> bool:
        return self._phase == "done"

    def total_sweep_runs(self) -> int:
        """Worst-case sweep runs under the *paper* strategy (128/N)."""
        blocks = PAGE_SIZE // BLOCK_SIZE
        return (blocks + self.pws_per_call - 1) // self.pws_per_call

    # ------------------------------------------------------------------
    # what to monitor at each step of the next run
    # ------------------------------------------------------------------
    def queries_for(self, step: int) -> List[PwRange]:
        """PW ranges to prime/probe around dynamic instruction ``step``
        in the upcoming run."""
        if self.restrict_to is not None and step not in self.restrict_to:
            return []
        search = self.steps[step]
        if self._phase == "sweep":
            if search.sweep_done:
                return []
            if self.strategy == "paper":
                return self._paper_sweep_queries(search)
            return self._adaptive_sweep_queries(search)
        if self._phase == "narrow":
            queries: List[PwRange] = []
            for lane in search.lanes:
                if lane.candidate.size > 2:
                    # Sub-PWs of one candidate share a fetch block and
                    # hence a BTB set: cap the split at 4 so the batch
                    # stays well under the 8-way associativity.
                    queries.extend(lane.candidate.split(
                        min(4, self.pws_per_call)))
            return queries
        if self._phase in ("final0", "final1"):
            index = 0 if self._phase == "final0" else 1
            if index >= len(search.lanes):
                return []
            lane = search.lanes[index]
            if lane.resolved is not None:
                return []
            return [PwRange(lane.candidate.start - 1,
                            lane.candidate.start + 1)]
        return []

    def _paper_sweep_queries(self, search: StepSearch) -> List[PwRange]:
        queries: List[PwRange] = []
        for page_base in search.page_bases:
            window = page_base + self._sweep_cursor * BLOCK_SIZE
            limit = min(window + self.pws_per_call * BLOCK_SIZE,
                        page_base + PAGE_SIZE)
            queries.extend(
                PwRange(start, start + BLOCK_SIZE)
                for start in range(window, limit, BLOCK_SIZE)
                if start not in search.tested)
        return queries

    def _adaptive_sweep_queries(self,
                                search: StepSearch) -> List[PwRange]:
        ordered: List[int] = []

        def push(block: Optional[int]) -> None:
            if block is None or block in search.tested:
                return
            if block in ordered:
                return
            for base in search.page_bases:
                if base <= block < base + PAGE_SIZE:
                    ordered.append(block)
                    return

        # 1. confirmation of an existing hit comes first
        if search.lowest_matched is not None:
            push(search.lowest_matched - BLOCK_SIZE)
        # 2. locality: the previous step's block and its neighbours
        if self._last_hit_block is not None:
            for delta in (0, BLOCK_SIZE, -BLOCK_SIZE,
                          2 * BLOCK_SIZE, -2 * BLOCK_SIZE):
                push(self._last_hit_block + delta)
        # 3. globally hot blocks
        for block in sorted(self._hot_blocks,
                            key=self._hot_blocks.get, reverse=True):
            if len(ordered) >= self.pws_per_call:
                break
            push(block)
        # 4. untested remainder, ascending
        if len(ordered) < self.pws_per_call:
            for block in search.all_blocks():
                if len(ordered) >= self.pws_per_call:
                    break
                push(block)
        return [PwRange(start, start + BLOCK_SIZE)
                for start in sorted(ordered[:self.pws_per_call])]

    # ------------------------------------------------------------------
    # feed one step's probe result back
    # ------------------------------------------------------------------
    def record(self, step: int, queries: List[PwRange],
               matched: List[bool]) -> None:
        search = self.steps[step]
        hits = [pw for pw, hit in zip(queries, matched) if hit]
        search.matched_history.append(hits)
        if self._phase in ("final0", "final1"):
            index = 0 if self._phase == "final0" else 1
            if index < len(search.lanes):
                lane = search.lanes[index]
                if lane.resolved is None:
                    # Probed [b-1, b+1): the probe's entry sits at byte
                    # b, so it matches iff the instruction starts at b.
                    lane.resolved = (lane.candidate.start if hits
                                     else lane.candidate.start + 1)
            return
        if self._phase == "narrow":
            for lane in search.lanes:
                lane_hits = [pw for pw in hits
                             if lane.candidate.start <= pw.start
                             < lane.candidate.end]
                if lane_hits:
                    lane.candidate = min(lane_hits,
                                         key=lambda pw: pw.start)
            return
        # ----- sweep ----------------------------------------------------
        search.tested.update(pw.start for pw in queries)
        for pw in hits:
            search.matched_blocks.add(pw.start)
            self._hot_blocks[pw.start] = \
                self._hot_blocks.get(pw.start, 0) + 1
        if hits:
            self._last_hit_block = min(search.matched_blocks)
        self._update_sweep_done(search)
        if search.sweep_done:
            self._build_lanes(search)

    def _update_sweep_done(self, search: StepSearch) -> None:
        lowest = search.lowest_matched
        if lowest is not None:
            at_page_start = any(lowest == base
                                for base in search.page_bases)
            if at_page_start or lowest - BLOCK_SIZE in search.tested:
                search.sweep_done = True
                return
        if len(search.tested) >= len(search.all_blocks()):
            search.sweep_done = True     # exhausted (possibly no hit)

    def _build_lanes(self, search: StepSearch) -> None:
        if search.lanes or not search.matched_blocks:
            return
        blocks = sorted(search.matched_blocks)
        lowest = blocks[0]
        search.lanes.append(_Lane(PwRange(lowest, lowest + BLOCK_SIZE)))
        for block in blocks[1:]:
            if block > lowest + BLOCK_SIZE:
                # A second, non-adjacent matched block: possible §6.3
                # speculation artifact pair — narrow it too.
                search.lanes.append(
                    _Lane(PwRange(block, block + BLOCK_SIZE)))
                break

    # ------------------------------------------------------------------
    # pass sequencing
    # ------------------------------------------------------------------
    def _active_steps(self):
        if self.restrict_to is None:
            return self.steps
        return [self.steps[index] for index in self.restrict_to
                if index < self.num_steps]

    def advance(self) -> None:
        """Move to the next run (and possibly the next phase)."""
        if self._phase == "sweep":
            if self.strategy == "paper":
                self._sweep_cursor += self.pws_per_call
                if self._sweep_cursor * BLOCK_SIZE >= PAGE_SIZE:
                    self._finish_sweep()
            elif all(s.sweep_done for s in self._active_steps()):
                self._finish_sweep()
            return
        if self._phase == "narrow":
            self._narrow_rounds += 1
            stalled = self._narrow_rounds >= self.max_narrow_rounds
            if stalled or all(
                    lane.candidate.size <= 2
                    for s in self._active_steps() for lane in s.lanes):
                self._phase = "final0"
            return
        if self._phase == "final0":
            if any(len(s.lanes) > 1 for s in self.steps):
                self._phase = "final1"
            else:
                self._disambiguate()
                self._phase = "done"
            return
        if self._phase == "final1":
            self._disambiguate()
            self._phase = "done"
            return

    def _finish_sweep(self) -> None:
        for search in self.steps:
            search.sweep_done = True
            self._build_lanes(search)
        self._phase = "narrow"

    # ------------------------------------------------------------------
    # §6.3 cross-step disambiguation
    # ------------------------------------------------------------------
    def _disambiguate(self) -> None:
        """Pick each step's base among its lane resolutions.

        A lower-lane value that reappears as a *later* nearby step's
        resolution is the PC of an instruction fetched speculatively at
        a predicted branch target — i.e. the later step's PC, not this
        one's.  Process back-to-front so later choices are final."""
        chosen: List[Optional[int]] = [None] * self.num_steps
        for index in range(self.num_steps - 1, -1, -1):
            search = self.steps[index]
            values = [lane.resolved for lane in search.lanes
                      if lane.resolved is not None]
            if not values:
                continue
            if len(values) == 1:
                chosen[index] = values[0]
                continue
            low, high = sorted(values)[0], sorted(values)[-1]
            upcoming = {
                chosen[j]
                for j in range(index + 1,
                               min(index + 1 + DISAMBIGUATION_WINDOW,
                                   self.num_steps))
                if chosen[j] is not None
            }
            chosen[index] = high if low in upcoming else low
        for search, value in zip(self.steps, chosen):
            search.resolved = value

    # ------------------------------------------------------------------
    def bases(self) -> List[Optional[int]]:
        return [s.resolved for s in self.steps]

    def confidence_for(self, index: int) -> float:
        """How far step ``index``'s search progressed, as a confidence
        in [0, 1] — graceful-degradation metadata for partial
        extractions (budget ran out mid-traversal)."""
        search = self.steps[index]
        resolved = [lane for lane in search.lanes
                    if lane.resolved is not None]
        if resolved:
            return 0.95 if len(resolved) == 1 else 0.8
        if not search.sweep_done:
            return 0.0
        if search.lanes:
            # Block(s) found, byte-level resolution still pending: the
            # best guess is the lane start, accurate to a fetch block.
            return 0.4
        return 0.0

    def value_sets(self) -> List[List[int]]:
        """Per-step lane resolutions (pre-disambiguation candidates)."""
        return [
            sorted({lane.resolved for lane in search.lanes
                    if lane.resolved is not None})
            for search in self.steps
        ]


def disambiguate_values(value_sets: Sequence[Sequence[int]],
                        window: int = DISAMBIGUATION_WINDOW
                        ) -> List[Optional[int]]:
    """§6.3 cross-step disambiguation over per-step candidate sets.

    A candidate that reappears as a *later* nearby step's chosen value
    is a speculative artifact (the PC of an instruction that retires
    later); remaining candidates resolve to the smallest.  Processed
    back-to-front so later choices are final.
    """
    count = len(value_sets)
    chosen: List[Optional[int]] = [None] * count
    for index in range(count - 1, -1, -1):
        values = list(value_sets[index])
        if not values:
            continue
        if len(values) == 1:
            chosen[index] = values[0]
            continue
        upcoming = {
            chosen[j]
            for j in range(index + 1, min(index + 1 + window, count))
            if chosen[j] is not None
        }
        # ±1-byte tolerance: the artifact's final point probe can land
        # on either byte of its 2-byte candidate depending on how deep
        # that run's speculation happened to reach.
        surviving = [
            v for v in values
            if not any(abs(v - c) <= 1 for c in upcoming)
        ]
        chosen[index] = min(surviving) if surviving else min(values)
    return chosen


def suspicious_steps(chosen: Sequence[Optional[int]],
                     value_sets: Sequence[Sequence[int]],
                     window: int = DISAMBIGUATION_WINDOW) -> Set[int]:
    """Steps whose resolution looks like a speculation artifact (it
    reappears as a later nearby step's value) or failed outright —
    candidates for a second, exhaustive sweep round."""
    out: Set[int] = set()
    count = len(chosen)
    for index in range(count):
        if chosen[index] is None:
            out.add(index)
            continue
        if len(value_sets[index]) > 1:
            continue     # already had alternatives to choose between
        for later in range(index + 1,
                           min(index + 1 + window, count)):
            if chosen[later] is not None and \
                    abs(chosen[later] - chosen[index]) <= 1:
                out.add(index)
                break
    return out
