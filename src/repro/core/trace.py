"""Extracted-trace data model (what NV-S ultimately produces).

A NightVision-extracted trace is a sequence of *retire-unit base PCs*:
for every single-stepped unit, the byte-granular address its fetch
started at.  Macro-fused ALU+Jcc pairs appear as one entry (their
leading PC) — the measurement artifact behind the <100 % self-
similarity the paper reports in §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class StepRecord:
    """Everything NightVision learned about one dynamic step."""

    index: int
    #: candidate page bases (controlled channel), lowest first
    page_bases: Tuple[int, ...]
    #: resolved byte-granular base PC (None if the search failed)
    pc: Optional[int]
    #: did this step touch a data page? (call/ret classifier input)
    data_access: bool = False
    #: how much the extractor trusts ``pc``: 1.0 = fully confirmed,
    #: 0.0 = unresolved (graceful-degradation metadata)
    confidence: float = 1.0


@dataclass
class ExtractedTrace:
    """The full output of an NV-S extraction (Fig. 9)."""

    steps: List[StepRecord] = field(default_factory=list)
    #: number of complete enclave re-executions used
    runs: int = 0
    #: total NV-Core prime+probe invocations
    probes: int = 0
    #: True when extraction stopped early (probe budget exhausted) and
    #: the trailing steps carry whatever was resolved so far
    partial: bool = False

    @property
    def pcs(self) -> List[int]:
        """Resolved PCs, in dynamic order (unresolved steps dropped)."""
        return [step.pc for step in self.steps if step.pc is not None]

    @property
    def mean_confidence(self) -> float:
        if not self.steps:
            return 0.0
        return (sum(step.confidence for step in self.steps)
                / len(self.steps))

    @property
    def resolution_rate(self) -> float:
        if not self.steps:
            return 0.0
        resolved = sum(1 for step in self.steps if step.pc is not None)
        return resolved / len(self.steps)

    def accuracy_against(self, truth: Sequence[int]) -> float:
        """Fraction of steps whose PC matches the ground-truth unit
        starts (positional comparison)."""
        if not truth:
            return 1.0
        correct = sum(
            1 for step, expected in zip(self.steps, truth)
            if step.pc == expected)
        return correct / max(len(truth), len(self.steps))
