"""Prediction-window (PW) snippet construction (§4.1, Figures 5 & 7).

A PW snippet is the attacker's measurement instrument: a sequence of
1-byte nops ending in a 2-byte direct jump, occupying exactly the
monitored address range *in low-order address bits*.  Because the BTB
tag check ignores bits at and above ``tag_keep_bits``, the attacker
maps its snippet at ``victim_address + alias_index * 2**tag_keep_bits``
and the two ranges collide in the BTB.

Snippets for several monitored ranges are chained (Fig. 7): each PW's
terminating ``jmp8`` has displacement 0, i.e. it *jumps* to the next
byte (a real taken control transfer that allocates a BTB entry, with
fall-through layout).  Non-adjacent ranges are linked with 5-byte glue
jumps placed right after the preceding PW; a terminator jump + ``hlt``
closes the chain so the last PW's misprediction penalty still lands in
a measurable LBR record.

Address-space discipline: everything the attacker fetches aliases
*some* victim bytes — that is inherent to the technique.  What matters
is that the only *BTB entries* the attacker allocates inside monitored
ranges are the PW terminators themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AttackError
from ..isa.assembler import Assembler, Ref
from ..memory.address import BLOCK_SIZE, block_base, same_block, truncate


@dataclass(frozen=True)
class PwRange:
    """One monitored victim virtual-address range ``[start, end)``.

    Constraints from the BTB organisation: at least 2 bytes (the
    ``jmp8``), at most 32, and fully inside one 32-byte-aligned block
    (a PW cannot cross a fetch-block boundary).
    """

    start: int
    end: int

    def __post_init__(self):
        if not 2 <= self.size <= BLOCK_SIZE:
            raise AttackError(
                f"PW range size must be in [2, 32]: {self}")
        if self.size > 2 and not same_block(self.start, self.end - 1):
            # A bare 2-byte probe may straddle a block boundary — it
            # degenerates into a point probe at its jump's last byte,
            # which is exactly what the traversal's final pass needs.
            raise AttackError(
                f"PW range must stay inside one 32-byte block: {self}")

    @property
    def size(self) -> int:
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def split(self, pieces: int = 2) -> List["PwRange"]:
        """Split into ``pieces`` contiguous sub-ranges (PW traversal,
        Fig. 10).  Sizes stay >= 2 bytes."""
        if pieces < 2:
            return [self]
        if self.size < 2 * pieces:
            pieces = max(1, self.size // 2)
            if pieces < 2:
                return [self]
        base_size = self.size // pieces
        out: List[PwRange] = []
        cursor = self.start
        for index in range(pieces):
            size = base_size + (self.size % pieces if
                                index == pieces - 1 else 0)
            out.append(PwRange(cursor, cursor + size))
            cursor += size
        return out

    def __str__(self) -> str:
        return f"[{self.start:#x}, {self.end:#x})"


def page_pws(page_base_address: int,
             page_size: int = 4096) -> List[PwRange]:
    """The 128 mutually-disjoint 32-byte PWs covering one page
    (Fig. 10, pass #1)."""
    return [
        PwRange(page_base_address + offset,
                page_base_address + offset + BLOCK_SIZE)
        for offset in range(0, page_size, BLOCK_SIZE)
    ]


@dataclass
class ProbeCode:
    """An assembled chain of PW snippets, ready to prime/probe."""

    ranges: Tuple[PwRange, ...]
    #: attacker-space address where execution starts
    entry: int
    #: attacker-space PC of each PW's terminating jmp8 (LBR from_pc),
    #: parallel to ``ranges``
    jmp_pcs: Tuple[int, ...]
    #: attacker-space PC of the terminator jump closing the chain
    terminator_pc: int
    #: the program to map into the attacker's address space
    program: object
    #: alias displacement applied (attacker = victim_low + alias_base)
    alias_base: int


class PwBuilder:
    """Builds :class:`ProbeCode` for a set of monitored ranges."""

    def __init__(self, tag_keep_bits: int, alias_index: int = 2):
        if alias_index < 1:
            raise AttackError("alias_index must be >= 1")
        self.tag_keep_bits = tag_keep_bits
        self.alias_base = alias_index << tag_keep_bits

    def attacker_address(self, victim_address: int) -> int:
        """Where the snippet byte aliasing ``victim_address`` lives in
        the attacker's address space."""
        return truncate(victim_address, self.tag_keep_bits) \
            + self.alias_base

    def build(self, ranges: Sequence[PwRange]) -> ProbeCode:
        """Assemble the chained snippet for ``ranges``.

        Ranges must be pairwise disjoint in low-order-bit space; gaps
        between consecutive snippets must be 0 (chained) or >= 5 bytes
        (room for a glue jump).

        A single 2-byte range straddling a 32-byte block boundary gets
        a special *ret probe*: a block-aligned monitored byte cannot be
        instrumented with a 2-byte jump (the jump would start in the
        previous block and never predict), but a 1-byte ``ret`` ending
        exactly on that byte can.
        """
        if not ranges:
            raise AttackError("no PW ranges given")
        if len(ranges) == 1 and ranges[0].size == 2 \
                and not same_block(ranges[0].start, ranges[0].end - 1):
            return self._build_ret_probe(ranges[0])
        for pw_range in ranges:
            if not same_block(pw_range.start, pw_range.end - 1):
                raise AttackError(
                    f"straddling range {pw_range} must be probed alone")
        placed = sorted(
            ((self.attacker_address(r.start),
              self.attacker_address(r.end - 1) + 1, r)
             for r in ranges),
            key=lambda item: item[0],
        )
        for (_, prev_end, prev), (next_start, _, cur) in zip(
                placed, placed[1:]):
            gap = next_start - prev_end
            if gap < 0:
                raise AttackError(
                    f"PW ranges {prev} and {cur} overlap in low-bit "
                    f"space")
            if 0 < gap < 5:
                raise AttackError(
                    f"gap between {prev} and {cur} is {gap} bytes; "
                    f"must be 0 or >= 5 (glue jump)")

        # Preamble stub: a branch retired just before the first PW so
        # the first monitored jump's elapsed-cycle reading has a time
        # origin (the paper's measurements have the call into the
        # snippet playing this role).  Placed 1 MiB + 16 fetch blocks
        # above the monitored region: the 1 MiB changes the tag, the
        # 16 blocks change the *set index* so the stub entry can never
        # fight the monitored entries for BTB ways (a same-block PW
        # batch already uses one way per sub-PW).
        stub = placed[0][0] + 0x10_0000 + 16 * BLOCK_SIZE
        asm = Assembler(base=stub)
        asm.label("__stub")
        asm.emit("jmp", "__pwstart0")
        jmp_by_range: Dict[PwRange, int] = {}
        for index, (start, end, pw_range) in enumerate(placed):
            asm.org(start)
            asm.label(f"__pwstart{index}")
            asm.nops(pw_range.size - 2)
            jmp_by_range[pw_range] = end - 2
            asm.emit("jmp8", 0)          # taken jump to the next byte
            if index + 1 < len(placed):
                next_start = placed[index + 1][0]
                if next_start != end:
                    asm.emit("jmp", f"__pwstart{index + 1}")
        # Terminator: a final jump whose *successor record* captures
        # the last PW's misprediction penalty, then a halt.
        last_end = placed[-1][1]
        terminator_pc = last_end
        asm.emit("jmp", "__done")
        asm.nops(32)                      # keep hlt out of the last PW
        asm.label("__done")
        asm.emit("hlt")
        program = asm.assemble()
        return ProbeCode(
            ranges=tuple(ranges),
            entry=stub,
            jmp_pcs=tuple(jmp_by_range[r] for r in ranges),
            terminator_pc=terminator_pc,
            program=program,
            alias_base=self.alias_base,
        )

    def _build_ret_probe(self, pw_range: PwRange) -> ProbeCode:
        """Point probe at ``pw_range.end - 1`` built from a 1-byte
        ``ret`` (see :meth:`build`).  The stub pushes the continuation
        address, so the ret is a perfectly predictable branch whose
        misprediction flags the deallocation."""
        target_byte = self.attacker_address(pw_range.end - 1)
        stub = target_byte + 0x10_0000 + 16 * BLOCK_SIZE
        asm = Assembler(base=stub)
        asm.label("__stub")
        asm.emit("movabs", "rcx", Ref("__cont", mode="abs"))
        asm.emit("push", "rcx")
        asm.emit("jmp", "__probe_ret")
        asm.label("__cont")
        asm.emit("jmp", "__done")
        asm.nops(8)
        asm.label("__done")
        asm.emit("hlt")
        asm.org(target_byte)
        asm.label("__probe_ret")
        asm.emit("ret")
        program = asm.assemble()
        return ProbeCode(
            ranges=(pw_range,),
            entry=stub,
            jmp_pcs=(target_byte,),
            terminator_pc=program.address_of("__cont"),
            program=program,
            alias_base=self.alias_base,
        )
