"""NV-U: the user-level NightVision variant (§4.2, Fig. 6).

NV-U wraps NV-Core around each victim execution *fragment* — the slice
of victim instructions that runs between two scheduler preemptions.
Following the paper's own evaluation methodology (§7.2), preemption is
driven by the victim's ``sched_yield`` calls: the victim yields once
per loop iteration, the attacker primes before the fragment and probes
after it.

The real preemptive-scheduling machinery (hundreds of attacker child
processes DoS-ing the run queue) is acknowledged orthogonal work in the
paper and simulated there exactly as it is here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..cpu.core import StopReason
from ..system.process import Process
from .nv_core import NvCore, ProbeSession
from .pw import PwRange


@dataclass
class FragmentObservation:
    """NV-Core result for one victim fragment."""

    index: int
    matched: List[bool]
    #: retire units the victim spent in this fragment
    victim_retired: int
    #: per-range confidence when the session ran under a
    #: :class:`~repro.core.measurement.MeasurementPolicy`; ``None``
    #: for the naive path
    confidence: Optional[List[float]] = None
    #: False when the policy's retry budget left ranges unresolved
    stable: bool = True


@dataclass
class NvUserResult:
    """The full per-fragment match matrix (Fig. 6's ``match[][]``)."""

    observations: List[FragmentObservation] = field(default_factory=list)
    victim_exited: bool = False

    def column(self, index: int) -> List[bool]:
        """Per-fragment match history of PW ``index``."""
        return [obs.matched[index] for obs in self.observations]


class NvUser:
    """Runs NV-Core across every fragment of a victim's execution."""

    def __init__(self, nv_core: NvCore):
        self.nv = nv_core
        self.kernel = nv_core.kernel

    def monitor(self, ranges: Sequence[PwRange]) -> ProbeSession:
        return self.nv.monitor(ranges)

    def run(self, victim: Process, session: ProbeSession, *,
            max_fragments: int = 100_000,
            on_fragment: Optional[
                Callable[[FragmentObservation], None]] = None
            ) -> NvUserResult:
        """Interleave with ``victim`` until it exits.

        Per fragment: prime -> victim runs to its next ``sched_yield``
        (or exit) -> probe.  Returns the match matrix.
        """
        result = NvUserResult()
        for index in range(max_fragments):
            if not victim.alive:
                break
            session.prime()
            run = self.kernel.run_slice(victim)
            if session.policy is not None:
                measured = session.probe_measured()
                observation = FragmentObservation(
                    index=index, matched=measured.matched,
                    victim_retired=run.retired,
                    confidence=measured.confidence,
                    stable=measured.stable)
            else:
                observation = FragmentObservation(
                    index=index, matched=session.probe(),
                    victim_retired=run.retired)
            result.observations.append(observation)
            if on_fragment is not None:
                on_fragment(observation)
            if run.reason is StopReason.HALT or not victim.alive:
                result.victim_exited = True
                break
        else:
            return result
        result.victim_exited = not victim.alive or result.victim_exited
        return result
