"""NV-S: the supervisor-level NightVision variant (paper §4.3, §6.3).

NV-S owns every privileged capability the paper's threat model grants:
SGX-Step single-stepping, controlled-channel page tracking (virtual
page numbers), accessed-bit monitoring (call/ret confirmation) — and
the shared-core BTB, through NV-Core.

Full-trace extraction follows Fig. 9 / Fig. 10:

1. a *discovery* run single-steps the whole enclave once, collecting
   the step count, per-step candidate code pages and per-step
   data-access bits;
2. the PW traversal then re-executes the enclave ``128/N + log`` times,
   priming/probing step-specific PW sets around every single step,
   until each dynamic instruction's base address is known to the byte.

Between steps the attacker rewrites its own probe snippets (Fig. 9
line 8) — here, cached :class:`ProbeSession` objects re-mapped on
demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AttackError, BudgetExhausted
from ..memory.address import PAGE_SIZE
from ..sgx.controlled_channel import CodePageTracker, DataAccessMonitor
from ..sgx.enclave import Enclave
from ..sgx.sgxstep import SgxStepper
from ..system.kernel import Kernel
from ..system.process import Process
from ..victims.library import VictimProgram
from .measurement import MeasurementPolicy
from .nv_core import NvCore, ProbeSession
from .pw import PwRange
from .traversal import (PwTraversal, StepSearch,
                        disambiguate_values, suspicious_steps)
from .trace import ExtractedTrace, StepRecord


@dataclass
class _EnclaveRun:
    host: Process
    enclave: Enclave
    stepper: SgxStepper
    tracker: CodePageTracker
    monitor: DataAccessMonitor

    def close(self, kernel: Kernel) -> None:
        self.tracker.uninstall()
        if self.host in kernel.processes:
            kernel.processes.remove(self.host)


class NvSupervisor:
    """Drives full dynamic-PC-trace extraction from an enclave."""

    def __init__(self, kernel: Kernel, *,
                 pws_per_call: int = 8,
                 detector: str = "hybrid",
                 strategy: str = "adaptive",
                 speculate: Optional[bool] = None,
                 max_steps: int = 200_000,
                 policy: Optional[MeasurementPolicy] = None,
                 probe_budget: Optional[int] = None):
        self.kernel = kernel
        self.nv = NvCore(kernel, detector=detector,
                         calibration_rounds=1, policy=policy)
        self.pws_per_call = pws_per_call
        self.strategy = strategy
        #: run the exhaustive second sweep over suspicious steps
        self.second_round = True
        self.speculate = speculate
        self.max_steps = max_steps
        #: total prime+probe invocations allowed; when it runs out,
        #: :meth:`extract_trace` returns a *partial* trace instead of
        #: finishing the traversal
        self.probe_budget = probe_budget
        self._sessions: Dict[Tuple[Tuple[int, int], ...],
                             ProbeSession] = {}
        self.probes = 0

    # ------------------------------------------------------------------
    # enclave lifecycle
    # ------------------------------------------------------------------
    def _new_run(self, victim: VictimProgram,
                 inputs: dict) -> _EnclaveRun:
        host, enclave = victim.new_enclave(inputs)
        self.kernel.add_process(host)
        stepper = SgxStepper(self.kernel, host, enclave)
        tracker = CodePageTracker(self.kernel, host, enclave)
        monitor = DataAccessMonitor(host, enclave)
        tracker.install()
        stepper.enter(entry=victim.compiled.start)
        return _EnclaveRun(host, enclave, stepper, tracker, monitor)

    # ------------------------------------------------------------------
    # probe session cache
    # ------------------------------------------------------------------
    def _session_for(self, queries: Sequence[PwRange]
                     ) -> Optional[ProbeSession]:
        if not queries:
            return None
        key = tuple((pw.start, pw.end) for pw in queries)
        session = self._sessions.get(key)
        if session is None:
            session = self.nv.monitor(list(queries))
            self._sessions[key] = session
        else:
            # Another cached session may have overwritten these bytes
            # in the attacker's address space: re-map before use.
            session.code.program.load_into(self.nv.attacker.memory)
        return session

    # ------------------------------------------------------------------
    # phase 0: discovery (step count, pages, data-access bits)
    # ------------------------------------------------------------------
    def discover(self, victim: VictimProgram,
                 inputs: dict) -> List[StepRecord]:
        run = self._new_run(victim, inputs)
        records: List[StepRecord] = []
        resilient = self.nv.policy is not None
        try:
            index = 0
            while index < self.max_steps:
                page_before = run.tracker.current_page
                faults_before = len(run.tracker.page_trace)
                run.monitor.arm()
                step = run.stepper.step(speculate=self.speculate)
                if step.retired:
                    pages = []
                    if page_before is not None:
                        pages.append(page_before * PAGE_SIZE)
                    for vpn in run.tracker.page_trace[faults_before:]:
                        base = vpn * PAGE_SIZE
                        if base not in pages:
                            pages.append(base)
                    # A multi-step interrupt (fault injection) retires
                    # several units under one "step".  The resilient
                    # stepper trusts the observable retire count and
                    # books one record per unit — both units share the
                    # slice's page candidates — keeping every later
                    # step index aligned.  The naive path books one
                    # and silently desynchronizes.
                    units = step.retired if resilient else 1
                    for _ in range(units):
                        records.append(StepRecord(
                            index=index,
                            page_bases=tuple(sorted(pages)),
                            pc=None,
                            data_access=run.monitor.touched_any(),
                        ))
                        index += 1
                if not step.running:
                    return records
            raise AttackError(
                f"enclave exceeded {self.max_steps} steps")
        finally:
            run.close(self.kernel)

    # ------------------------------------------------------------------
    # one full traversal pass (one enclave re-execution)
    # ------------------------------------------------------------------
    def _run_pass(self, victim: VictimProgram, inputs: dict,
                  traversal: PwTraversal) -> None:
        run = self._new_run(victim, inputs)
        resilient = self.nv.policy is not None
        try:
            index = 0
            while index < traversal.num_steps:
                queries = traversal.queries_for(index)
                session = self._session_for(queries)
                if session is not None:
                    session.prime()
                step = run.stepper.step(speculate=self.speculate)
                if step.retired and session is not None:
                    if (self.probe_budget is not None
                            and self.probes >= self.probe_budget):
                        raise BudgetExhausted(
                            "probe budget exhausted mid-traversal",
                            budget=self.probe_budget,
                            spent=self.probes)
                    if resilient and step.retired > 1:
                        # The interrupt landed late: this reading
                        # conflates two units' fetches.  Probe anyway
                        # (consume the stale signal) but record
                        # nothing — a later pass re-measures this
                        # step cleanly.
                        session.probe()
                    elif session.policy is not None:
                        # Feed the traversal only the *definitive*
                        # ranges: a degraded reading (dropped record)
                        # must not mark its PW as tested-clean, or the
                        # sweep would confirm a wrong lowest block.
                        # Dropped ranges get re-queried next pass.
                        measured = session.probe_measured()
                        definitive = [
                            (query, hit)
                            for query, hit, conf in zip(
                                queries, measured.matched,
                                measured.confidence)
                            if conf >= 0.5]
                        if definitive:
                            traversal.record(
                                index,
                                [query for query, _ in definitive],
                                [hit for _, hit in definitive])
                    else:
                        matched = session.probe()
                        traversal.record(index, list(queries), matched)
                    self.probes += 1
                if step.retired:
                    # Trusting the observable retire count keeps the
                    # resilient stepper aligned across multi-steps;
                    # the naive path drifts one step per fault.
                    index += step.retired if resilient else 1
                if not step.running:
                    break
        finally:
            run.close(self.kernel)

    # ------------------------------------------------------------------
    # the full Fig. 9 attack
    # ------------------------------------------------------------------
    def extract_trace(self, victim: VictimProgram,
                      inputs: dict) -> ExtractedTrace:
        """Recover the byte-granular base PC of every retire unit.

        Round 1 runs the configured sweep strategy; steps whose
        resolution looks like a §6.3 speculation artifact (or failed)
        get a second, exhaustive sweep round restricted to them, and
        the combined candidate sets go through the paper's cross-step
        disambiguation.

        With a ``probe_budget`` configured, running out of probes does
        *not* raise: extraction stops where it stands and returns a
        trace with ``partial=True``, every step tagged with the
        confidence its search had reached (graceful degradation).
        """
        records = self.discover(victim, inputs)
        page_bases = [list(record.page_bases) or [0]
                      for record in records]
        traversal = PwTraversal(
            num_steps=len(records),
            page_bases=page_bases,
            pws_per_call=self.pws_per_call,
            strategy=self.strategy,
        )
        runs = 1                       # the discovery run
        partial = False
        try:
            while not traversal.finished:
                self._run_pass(victim, inputs, traversal)
                traversal.advance()
                runs += 1
        except BudgetExhausted:
            partial = True
            runs += 1
        values = traversal.value_sets()
        chosen = disambiguate_values(values)
        confidence = [traversal.confidence_for(i)
                      for i in range(len(records))]
        retry = suspicious_steps(chosen, values)
        if retry and self.second_round and not partial:
            second = PwTraversal(
                num_steps=len(records),
                page_bases=page_bases,
                pws_per_call=self.pws_per_call,
                strategy="paper",
                restrict_to=retry,
                tested_preseed=[search.tested
                                for search in traversal.steps],
            )
            try:
                while not second.finished:
                    self._run_pass(victim, inputs, second)
                    second.advance()
                    runs += 1
            except BudgetExhausted:
                partial = True
                runs += 1
            for index, extra in enumerate(second.value_sets()):
                if extra:
                    values[index] = sorted(set(values[index]) |
                                           set(extra))
                    confidence[index] = max(
                        confidence[index], second.confidence_for(index))
            chosen = disambiguate_values(values)
        for index, (record, base) in enumerate(zip(records, chosen)):
            record.pc = base
            record.confidence = (confidence[index] if base is not None
                                 else 0.0)
            if base is None and partial:
                # Budget ran out before byte-level resolution: surface
                # the best block-granular guess rather than nothing.
                search = traversal.steps[index]
                if search.lanes:
                    record.pc = search.lanes[0].candidate.start
                    record.confidence = min(0.4,
                                            confidence[index] or 0.4)
        return ExtractedTrace(steps=records, runs=runs,
                              probes=self.probes, partial=partial)
