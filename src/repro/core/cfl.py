"""Use case 1: the control-flow leakage attack (paper §5, Fig. 8).

The attacker knows the (public, possibly hardened) victim binary and
wants the direction of a secret-dependent balanced branch at every
loop iteration.  Strategy (§5.2):

* pick PW ranges that are sub-intervals of the *then* and *else* arm
  address ranges (PW options 1 and 2 of Fig. 8);
* run NV-U: one fragment per loop iteration (sched_yield-driven);
* per fragment, deduce the direction from which arm's PW matched.
  Monitoring both arms also detects fragments where neither arm ran —
  the excessive-preemption filter the paper describes.

This defeats branch balancing (both arms look identical but are at
*different addresses*), ``-falign-jumps`` and CFR (the branch decision
itself is never observed) — and survives IBRS/IBPB, which only drop
indirect-branch BTB entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import AttackError
from ..lang.codegen import ArmRegion
from ..memory.address import block_end
from ..system.kernel import Kernel
from ..system.process import Process
from ..victims.library import VictimProgram
from .measurement import MeasurementPolicy
from .nv_core import NvCore
from .nv_user import NvUser
from .pw import PwRange


class Direction(enum.Enum):
    """Per-iteration verdict for the secret branch."""

    THEN = "then"
    ELSE = "else"
    NONE = "none"          # neither arm observed (no iteration ran)
    AMBIGUOUS = "both"     # both arms observed (over-long fragment)


def arm_pw(start: int, end: int, max_size: int = 16) -> PwRange:
    """A PW that is a sub-interval of the arm ``[start, end)``.

    PWs cannot cross a 32-byte fetch-block boundary, so take the
    largest prefix of the arm inside its first block (>= 2 bytes).
    """
    limit = min(end, block_end(start), start + max_size)
    if limit - start < 2:
        # Arm starts at the last byte of a block: step to the next
        # block (the arm is longer than 2 bytes in practice).
        start2 = block_end(start)
        limit = min(end, start2 + max_size, block_end(start2))
        if limit - start2 < 2:
            raise AttackError(
                f"arm [{start:#x},{end:#x}) too small for a PW")
        return PwRange(start2, limit)
    return PwRange(start, limit)


@dataclass
class CflResult:
    """Outcome of one attacked victim run."""

    directions: List[Direction]
    #: per-fragment raw matches [(then_matched, else_matched), ...]
    raw: List[Tuple[bool, bool]]
    #: per-fragment confidence (min over the monitored ranges); all
    #: 1.0 on the naive path
    confidence: List[float] = field(default_factory=list)

    def mean_confidence(self) -> float:
        if not self.confidence:
            return 1.0
        return sum(self.confidence) / len(self.confidence)

    def inferred(self) -> List[bool]:
        """Directions as booleans (True = then), skipping fragments
        where no iteration was observed."""
        return [d is Direction.THEN for d in self.directions
                if d in (Direction.THEN, Direction.ELSE)]

    def accuracy_against(self, truth: List[bool]) -> float:
        """Fraction of ground-truth iterations correctly recovered.

        Observed directions are matched positionally against the truth
        sequence; missing/ambiguous fragments count as errors.
        """
        if not truth:
            return 1.0
        usable = [d for d in self.directions
                  if d is not Direction.NONE]
        correct = 0
        for expected, direction in zip(truth, usable):
            if direction is (Direction.THEN if expected
                             else Direction.ELSE):
                correct += 1
        return correct / len(truth)


class ControlFlowLeakAttack:
    """End-to-end §5 attack against a :class:`VictimProgram`."""

    def __init__(self, kernel: Kernel, victim_program: VictimProgram, *,
                 arm_index: Optional[int] = None,
                 detector: str = "hybrid",
                 monitor_both_arms: bool = True,
                 policy: Optional[MeasurementPolicy] = None):
        self.kernel = kernel
        self.victim_program = victim_program
        if (policy is not None and policy.constraint is None
                and monitor_both_arms):
            # Both arms are monitored and exactly one runs per
            # fragment — the strongest unknown-resolution prior the
            # policy supports.
            policy = policy.with_(constraint="exactly_one")
        self.nv = NvCore(kernel, detector=detector, policy=policy)
        self.nv_user = NvUser(self.nv)
        self.monitor_both_arms = monitor_both_arms
        self.arm = self._select_arm(arm_index)
        self.then_pw = arm_pw(self.arm.then_start, self.arm.then_end)
        self.else_pw = arm_pw(self.arm.else_start, self.arm.else_end)
        ranges = ([self.then_pw, self.else_pw]
                  if monitor_both_arms else [self.else_pw])
        self.session = self.nv.monitor(ranges)

    def _select_arm(self, arm_index: Optional[int]) -> ArmRegion:
        compiled = self.victim_program.compiled
        arms = compiled.arms_in(self.victim_program.secret_function)
        if not arms:
            raise AttackError(
                f"no if/else in {self.victim_program.secret_function}")
        if arm_index is None:
            # The secret branch is the if/else with the largest arms
            # (the GCD reduce step); ties break to the first.
            arm_index = max(
                range(len(arms)),
                key=lambda i: min(
                    arms[i].then_end - arms[i].then_start,
                    arms[i].else_end - arms[i].else_start),
            )
        return arms[arm_index]

    # ------------------------------------------------------------------
    def ground_truth(self, inputs: dict) -> List[bool]:
        """Per-iteration truth: did the *then* arm execute?

        Derived from the victim's own execution trace (arm entry PCs),
        so it is correct for every source variant — including ones
        like mbedTLS 2.16 whose swap-based rewrite permutes the
        comparison operands across iterations.  Translate to key-bit
        semantics via ``victim_program.then_arm_is_truth``.
        """
        trace = self.victim_program.ground_truth(inputs).trace
        truth: List[bool] = []
        for pc in trace:
            if pc == self.arm.then_start:
                truth.append(True)
            elif pc == self.arm.else_start:
                truth.append(False)
        return truth

    def attack(self, inputs: dict, *,
               max_fragments: int = 10_000) -> CflResult:
        """Run one victim instance to completion and classify every
        fragment."""
        victim = self.victim_program.new_process(inputs)
        self.kernel.add_process(victim)
        outcome = self.nv_user.run(victim, self.session,
                                   max_fragments=max_fragments)
        directions: List[Direction] = []
        raw: List[Tuple[bool, bool]] = []
        confidence: List[float] = []
        for observation in outcome.observations:
            if self.monitor_both_arms:
                then_hit, else_hit = observation.matched
            else:
                else_hit = observation.matched[0]
                then_hit = not else_hit
            raw.append((then_hit, else_hit))
            confidence.append(min(observation.confidence)
                              if observation.confidence else 1.0)
            if then_hit and else_hit:
                directions.append(Direction.AMBIGUOUS)
            elif then_hit:
                directions.append(Direction.THEN)
            elif else_hit:
                directions.append(Direction.ELSE)
            elif (observation.confidence is not None
                  and min(observation.confidence) < 0.5):
                # Both arms read miss, but at low confidence (dropped
                # records degraded instead of observed): an iteration
                # probably did run and its direction was lost.  Report
                # an explicit unknown rather than NONE — silently
                # deleting the fragment would shift every later
                # iteration against the truth sequence.
                directions.append(Direction.AMBIGUOUS)
            else:
                directions.append(Direction.NONE)
        return CflResult(directions=directions, raw=raw,
                         confidence=confidence)
