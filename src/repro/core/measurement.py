"""Resilient measurement policy for the NightVision attacker stack.

On real hardware the paper's measurement channel is noisy: LBR records
go missing, timestamps jitter, co-residents evict BTB entries, and
SGX-Step interrupts mis-land.  The attacker survives by engineering the
measurement loop — calibrating thresholds from warm-up runs, voting
out one-off anomalies, retrying unstable reads with a bounded budget,
and surfacing *partial* results instead of crashing.  This module is
that engineering, factored out of the NV-Core probe path:

* :class:`MeasurementPolicy` — the knobs (calibration depth, outlier
  rejection, votes, retry budget, step-back, constraint hints);
* :class:`RangeStatus` — per-range classification of one probe
  reading, including the honest ``UNKNOWN`` state for a dropped LBR
  record (the naive path silently coerces that to "hit");
* :class:`MeasuredProbe` — a probe result tagged with per-range
  confidence, ready for graceful degradation downstream.

The physics constrains what a retry can recover: a probe run consumes
the BTB signal (the mispredicting jump re-allocates its own entry), so
a record dropped on the *first* reading is unrecoverable by re-probing.
The policy therefore resolves unknowns by constraint (e.g. the
control-flow-leak attack knows *exactly one* arm ran per fragment),
uses re-probes to vote down ambient-jitter false positives and to
verify the measurement path is healthy, and only then degrades —
tagging the range low-confidence rather than guessing silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence


class RangeStatus(enum.Enum):
    """Classification of one monitored range in one probe reading."""

    #: probe jump mispredicted — entry deallocated (Fig. 5 cases 3/4)
    HIT_STRONG = "hit-strong"
    #: own elapsed cycles elevated, prior record clean (cases 1/2) —
    #: could also be ambient jitter, hence "weak"
    HIT_WEAK = "hit-weak"
    #: hit inferred from a constraint, not observed directly
    HIT_INFERRED = "hit-inferred"
    #: clean baseline reading
    MISS = "miss"
    #: no direct observation; resolved to miss with low confidence
    MISS_DEGRADED = "miss-degraded"
    #: the probe jump's LBR record was missing (dropped / preempted)
    UNKNOWN = "unknown"

    @property
    def is_hit(self) -> bool:
        return self in (RangeStatus.HIT_STRONG, RangeStatus.HIT_WEAK,
                        RangeStatus.HIT_INFERRED)


#: default confidence assigned to each final status
CONFIDENCE = {
    RangeStatus.HIT_STRONG: 0.95,
    RangeStatus.HIT_WEAK: 0.6,
    RangeStatus.HIT_INFERRED: 0.7,
    RangeStatus.MISS: 0.9,
    RangeStatus.MISS_DEGRADED: 0.3,
    RangeStatus.UNKNOWN: 0.1,
}


@dataclass(frozen=True)
class MeasurementPolicy:
    """How hard the attacker works for each measurement.

    The defaults are tuned for the acceptance fault plan (5 % LBR
    drops, 2 % spurious evictions, 5 % multi-steps); a clean substrate
    pays at most the extra calibration rounds.
    """

    # ----- calibration -------------------------------------------------
    #: no-victim prime→probe rounds used to learn baselines
    calibration_rounds: int = 5
    #: a range must contribute at least this many clean samples; extra
    #: rounds (up to ``calibration_rounds * calibration_retry_factor``
    #: total) are spent chasing ranges whose records were dropped
    min_calibration_samples: int = 2
    calibration_retry_factor: int = 3
    #: calibration samples beyond this many stddevs from the median
    #: are rejected as outliers (jitter spikes)
    outlier_sigma: float = 3.0
    #: detection threshold is raised to this many stddevs of the
    #: calibration samples when that exceeds the static default
    threshold_sigma: float = 4.0

    # ----- per-probe resilience ---------------------------------------
    #: total readings participating in the weak-hit majority vote
    #: (1 disables voting)
    votes: int = 3
    #: bounded retry budget for unstable reads, per probe call
    max_retries: int = 3
    #: settle primes before the first retry; doubles every retry
    #: (exponential step-back)
    backoff_base: int = 1
    #: structural prior used to resolve unknowns: None, "exactly_one"
    #: (e.g. one branch arm per fragment) or "at_most_one"
    constraint: Optional[str] = None
    #: raise :class:`repro.errors.MeasurementUnstable` instead of
    #: degrading when the budget runs out
    fail_hard: bool = False

    def __post_init__(self) -> None:
        if self.calibration_rounds < 1:
            raise ValueError("calibration_rounds must be >= 1")
        if self.votes < 1:
            raise ValueError("votes must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        if self.constraint not in (None, "exactly_one", "at_most_one"):
            raise ValueError(
                f"unknown constraint {self.constraint!r}")

    def with_(self, **overrides) -> "MeasurementPolicy":
        return replace(self, **overrides)


DEFAULT_POLICY = MeasurementPolicy()


@dataclass
class MeasuredProbe:
    """One resilient probe measurement: per-range verdicts tagged with
    confidence, plus the effort spent obtaining them."""

    matched: List[bool]
    confidence: List[float]
    statuses: List[RangeStatus]
    #: snippet executions consumed (first probe + votes + retries)
    attempts: int = 1
    #: False when a range stayed unresolved after the retry budget
    stable: bool = True

    def min_confidence(self) -> float:
        return min(self.confidence) if self.confidence else 1.0


def apply_constraint(statuses: List[RangeStatus],
                     constraint: Optional[str]) -> List[RangeStatus]:
    """Resolve ``UNKNOWN`` entries using a structural prior.

    Only unknowns are ever rewritten — a definitive reading is never
    flipped (the final "no iteration ran" fragment must stay all-miss
    under ``exactly_one``).  With multiple hits under a one-hot prior,
    weak hits are demoted in favour of a single strong one.
    """
    if constraint is None:
        return statuses
    out = list(statuses)
    hits = [i for i, s in enumerate(out) if s.is_hit]
    unknowns = [i for i, s in enumerate(out)
                if s is RangeStatus.UNKNOWN]
    if len(hits) >= 1:
        # A hit exists: every unknown is (at most) a miss.
        for i in unknowns:
            out[i] = RangeStatus.MISS_DEGRADED
        strong = [i for i in hits
                  if out[i] is RangeStatus.HIT_STRONG]
        if len(hits) > 1 and len(strong) == 1:
            # One-hot prior violated by weak (jitter-prone) readings:
            # keep the strong hit, demote the weak ones.
            for i in hits:
                if i not in strong:
                    out[i] = RangeStatus.MISS_DEGRADED
        return out
    if (constraint == "exactly_one" and len(unknowns) == 1
            and len(out) > 1):
        # All observed ranges are definitive misses and exactly one
        # reading is missing: the prior pins the hit on it.
        out[unknowns[0]] = RangeStatus.HIT_INFERRED
    return out


def summarize(statuses: Sequence[RangeStatus],
              attempts: int, stable: bool) -> MeasuredProbe:
    """Fold final statuses into a :class:`MeasuredProbe`."""
    return MeasuredProbe(
        matched=[s.is_hit for s in statuses],
        confidence=[CONFIDENCE[s] for s in statuses],
        statuses=list(statuses),
        attempts=attempts,
        stable=stable,
    )
