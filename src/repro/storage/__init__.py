"""Durable artifact storage: atomic writes, checksummed envelopes,
write-ahead journaling, and corruption quarantine.

The paper's results are hours of unattended measurement whose state
must survive infrastructure faults; at campaign-service scale (10⁵–10⁶
jobs, DESIGN.md §12) torn writes, bit rot, disk-full, and crashed
checkpoints are routine, not exceptional.  This package is the one
place every persisted byte goes through:

* :func:`atomic_write` / :func:`atomic_write_bytes` /
  :func:`atomic_write_text` / :func:`atomic_write_json` — the single
  tmp + fsync + rename writer (formerly duplicated across the CLI,
  runner, perf suite, and service);
* :func:`wrap_envelope` / :func:`parse_document` — the sha256 +
  schema-tag + length envelope every durable JSON document carries
  (embedded as a plain ``"envelope"`` field, so direct readers keep
  working);
* :func:`checkpoint` / :func:`load_checkpoint` — write-ahead
  journaled persistence for manifests: a checkpoint interrupted
  mid-write replays or rolls back to the last good state, and a
  corrupted target is quarantined to ``<name>.corrupt`` and rebuilt
  from its journal;
* :func:`install_disk_faults` — the choke point the deterministic
  disk-fault injector (:mod:`repro.faults.disk`) perturbs for
  ``--chaos torn-write`` / ``bit-flip`` / ``enospc`` / ``fsync-fail``
  drills.

Telemetry counters: ``storage.writes``, ``storage.journal_replays``,
``storage.corruption_detected``, ``storage.rebuilds`` (the last
bumped by the campaign service when it reconstructs ``campaign.json``
from surviving per-shard manifests).  See DESIGN.md §13.
"""

from .atomic import (PathLike, atomic_write, atomic_write_bytes,
                     atomic_write_json, atomic_write_text,
                     clear_disk_faults, digest_text, disk_faults,
                     install_disk_faults, read_json)
from .envelope import (BODY_KEY, ENVELOPE_FMT, ENVELOPE_KEY,
                       LEGACY_TICK, canonical_bytes, parse_document,
                       wrap_envelope)
from .journal import (CORRUPT_SUFFIX, JOURNAL_SUFFIX, checkpoint,
                      journal_path, load_checkpoint, quarantine_file,
                      quarantine_path, reset_tick_cache)

__all__ = [
    "BODY_KEY",
    "CORRUPT_SUFFIX",
    "ENVELOPE_FMT",
    "ENVELOPE_KEY",
    "JOURNAL_SUFFIX",
    "LEGACY_TICK",
    "PathLike",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_bytes",
    "checkpoint",
    "clear_disk_faults",
    "digest_text",
    "disk_faults",
    "install_disk_faults",
    "journal_path",
    "load_checkpoint",
    "parse_document",
    "quarantine_file",
    "quarantine_path",
    "read_json",
    "reset_tick_cache",
    "wrap_envelope",
    "write_envelope",
]


def write_envelope(path, payload, schema: str, *,
                   tick: int = 1):
    """Atomically write ``payload`` as a (non-journaled) enveloped
    document — for derived artifacts like the service aggregate,
    where the journal's replay guarantee adds nothing."""
    return atomic_write_json(path, wrap_envelope(payload, schema,
                                                 tick))
