"""Write-ahead journaling + corruption recovery for checkpoints.

:func:`checkpoint` persists a JSON document twice: the enveloped
document is first written (atomically, fsynced) to ``<name>.journal``,
then to the target path.  The journal is deliberately **kept** after
the commit — it is the last-known-good copy, so recovery covers not
just a crash *between* the two writes but also later external damage
to the target (bit rot, a torn write on a filesystem whose rename was
not atomic, an operator truncating the file).

:func:`load_checkpoint` arbitrates between the two copies using the
envelope's checkpoint sequence number (``tick``):

* both valid — the newer tick wins; a newer journal is **replayed**
  over the target (the checkpoint died between journal and target);
* target corrupt — it is quarantined to ``<name>.corrupt`` and the
  journal replayed; if the journal is also bad, the load raises
  :class:`repro.errors.ArtifactCorrupt` with the quarantine path;
* journal corrupt, target valid — the torn journal write is **rolled
  back** (quarantined) and the target's last good state wins.

Every detected corruption bumps the ``storage.corruption_detected``
telemetry counter; every replay bumps ``storage.journal_replays``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import ArtifactCorrupt
from .atomic import PathLike, atomic_write_text, read_json
from .envelope import LEGACY_TICK, parse_document, wrap_envelope

JOURNAL_SUFFIX = ".journal"
CORRUPT_SUFFIX = ".corrupt"

#: per-path checkpoint sequence numbers (process-local write cache;
#: the authoritative tick lives in the envelopes on disk)
_TICKS: Dict[str, int] = {}


def journal_path(path: PathLike) -> Path:
    path = Path(path)
    return path.parent / f"{path.name}{JOURNAL_SUFFIX}"


def quarantine_path(path: PathLike) -> Path:
    """The (non-clobbering) destination a damaged file moves to."""
    path = Path(path)
    candidate = path.parent / f"{path.name}{CORRUPT_SUFFIX}"
    sequence = 0
    while candidate.exists():
        sequence += 1
        candidate = path.parent / \
            f"{path.name}{CORRUPT_SUFFIX}.{sequence}"
    return candidate


def quarantine_file(path: PathLike) -> Optional[Path]:
    """Move a damaged file aside to ``<name>.corrupt`` (forensics
    survive, a retried load starts clean).  Returns the quarantine
    path, or None if the file vanished underneath us."""
    path = Path(path)
    destination = quarantine_path(path)
    try:
        path.rename(destination)
    except OSError:
        return None
    from .. import telemetry
    telemetry.count("storage.corruption_detected")
    return destination


def _render(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True,
                      ensure_ascii=False) + "\n"


def checkpoint(path: PathLike, payload: object, schema: str) -> Path:
    """Durably persist ``payload``: journal first, then the target.

    A crash at any instant leaves a recoverable pair: old/old (before
    the journal landed), new/old (replayed on next load), or new/new.
    """
    path = Path(path)
    key = str(path)
    tick = _TICKS.get(key)
    if tick is None:
        tick = _tick_on_disk(path)
    tick += 1
    document = wrap_envelope(payload, schema, tick)
    text = _render(document)
    atomic_write_text(journal_path(path), text)
    atomic_write_text(path, text)
    _TICKS[key] = tick
    return path


def _tick_on_disk(path: Path) -> int:
    """Highest tick either copy holds (0 when nothing loads)."""
    best = LEGACY_TICK
    for candidate in (path, journal_path(path)):
        try:
            _, _, tick = parse_document(read_json(candidate))
            best = max(best, tick)
        except (OSError, ValueError, ArtifactCorrupt):
            continue
    return best


def _read_copy(path: Path, expect_schema: Optional[str]
               ) -> Tuple[object, int, Optional[str]]:
    """One copy's ``(payload, tick, schema)``; raises
    FileNotFoundError or ArtifactCorrupt."""
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise ArtifactCorrupt(f"cannot read {path}: {error}",
                              path=str(path),
                              reason="unreadable") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArtifactCorrupt(
            f"{path} is not valid JSON (truncated or torn write): "
            f"{error}", path=str(path),
            reason="invalid-json") from error
    try:
        payload, schema, tick = parse_document(document)
    except ArtifactCorrupt as error:
        raise ArtifactCorrupt(f"{path}: {error}", path=str(path),
                              reason=error.reason) from error
    if expect_schema is not None and schema is not None and \
            schema != expect_schema:
        raise ArtifactCorrupt(
            f"{path} carries schema tag {schema!r}, "
            f"expected {expect_schema!r}", path=str(path),
            reason="schema-mismatch")
    return payload, tick, schema


def load_checkpoint(path: PathLike,
                    expect_schema: Optional[str] = None) -> object:
    """Load a journaled checkpoint, healing what can be healed.

    Raises FileNotFoundError when neither copy exists, and
    :class:`ArtifactCorrupt` (after quarantining the damage) when
    neither copy validates.
    """
    path = Path(path)
    jpath = journal_path(path)

    target_error: Optional[BaseException] = None
    target: Optional[Tuple[object, int, Optional[str]]] = None
    try:
        target = _read_copy(path, expect_schema)
    except (FileNotFoundError, ArtifactCorrupt) as error:
        target_error = error

    journal: Optional[Tuple[object, int, Optional[str]]] = None
    journal_error: Optional[BaseException] = None
    try:
        journal = _read_copy(jpath, expect_schema)
    except (FileNotFoundError, ArtifactCorrupt) as error:
        journal_error = error

    from .. import telemetry

    if target is not None:
        if journal is not None and journal[1] > target[1]:
            # Checkpoint died between journal and target: replay.
            _replay(path, journal)
            telemetry.count("storage.journal_replays")
            return journal[0]
        if isinstance(journal_error, ArtifactCorrupt):
            # Torn WAL write: roll back to the target's good state.
            quarantine_file(jpath)
        _TICKS[str(path)] = max(_TICKS.get(str(path), 0), target[1])
        return target[0]

    quarantined = None
    if isinstance(target_error, ArtifactCorrupt):
        quarantined = quarantine_file(path)

    if journal is not None:
        _replay(path, journal)
        telemetry.count("storage.journal_replays")
        return journal[0]

    if isinstance(journal_error, ArtifactCorrupt):
        quarantine_file(jpath)
    if isinstance(target_error, FileNotFoundError) and \
            isinstance(journal_error, FileNotFoundError):
        raise FileNotFoundError(str(path))
    detail = target_error or journal_error
    raise ArtifactCorrupt(
        f"checkpoint {path} is corrupt and unrecoverable: {detail}",
        path=str(path),
        reason=getattr(detail, "reason", "corrupt"),
        quarantined=str(quarantined or ""))


def _replay(path: Path,
            copy: Tuple[object, int, Optional[str]]) -> None:
    """Write the journal's state over the target, preserving its
    tick and schema tag."""
    payload, tick, schema = copy
    atomic_write_text(path, _render(wrap_envelope(payload,
                                                  schema or "",
                                                  tick)))
    _TICKS[str(path)] = max(_TICKS.get(str(path), 0), tick)


def reset_tick_cache() -> None:
    """Forget cached checkpoint sequence numbers (tests)."""
    _TICKS.clear()
