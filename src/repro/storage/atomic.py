"""The one atomic artifact writer every layer persists through.

The payload is written to a temporary file in the *same directory*,
fsynced, then :func:`os.replace`'d over the destination.  A SIGKILL at
any point leaves either the old content or the new content — never a
truncated file.  The directory entry is fsynced too (best-effort) so
the rename survives a power cut on journalled filesystems.

This module used to live in :mod:`repro.runner.artifacts`; it moved
here so the CLI, runner, perf suite, and campaign service all share
one implementation (their former copies are now re-export shims) and
so the deterministic disk-fault injector (:mod:`repro.faults.disk`)
has a single choke point to perturb: :func:`install_disk_faults`
installs a process-global injector that every write consults before
touching the filesystem.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, os.PathLike]

#: process-global disk-fault injector (None = clean disk); workers
#: fork after installation, so a drill's faults reach every writer
#: whose path matches the injector's pattern
_DISK_FAULTS: Optional[object] = None


def install_disk_faults(injector) -> None:
    """Route every subsequent atomic write through ``injector``
    (see :class:`repro.faults.disk.DiskFaultInjector`)."""
    global _DISK_FAULTS
    _DISK_FAULTS = injector


def clear_disk_faults() -> None:
    global _DISK_FAULTS
    _DISK_FAULTS = None


def disk_faults():
    """The installed injector, or None (clean disk)."""
    return _DISK_FAULTS


def digest_text(text: str) -> str:
    """Stable content digest used by the manifest to compare job
    results across runs (clean vs resumed campaigns must byte-match)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:          # platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if _DISK_FAULTS is not None:
        # May corrupt ``data`` (bit flip), tear the target directly,
        # or raise DiskFaultError (ENOSPC / fsync failure / crash).
        data = _DISK_FAULTS.before_write(path, data)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    _fsync_dir(path.parent)
    from .. import telemetry
    telemetry.count("storage.writes")
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write(path: PathLike, data: Union[bytes, str]) -> Path:
    """The consolidated entry point: bytes or text, written atomically."""
    if isinstance(data, str):
        return atomic_write_text(path, data)
    return atomic_write_bytes(path, data)


def atomic_write_json(path: PathLike, payload: object) -> Path:
    """Serialize deterministically (sorted keys, stable layout) so
    identical campaign states produce byte-identical manifests."""
    text = json.dumps(payload, indent=2, sort_keys=True,
                      ensure_ascii=False) + "\n"
    return atomic_write_text(path, text)


def read_json(path: PathLike) -> object:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
