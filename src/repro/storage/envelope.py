"""Checksummed envelope format for persisted JSON artifacts.

Every durable JSON document carries an ``"envelope"`` field::

    {
      ...payload fields...,
      "envelope": {
        "fmt": 1,                # envelope format version
        "schema": "repro.runner.manifest",   # document type tag
        "tick": 17,              # checkpoint sequence number
        "sha256": "...",         # over the canonical payload bytes
        "length": 1234           # of the canonical payload bytes
      }
    }

The checksum covers the *canonical* serialization (sorted keys,
compact separators) of the payload **without** the envelope field, so
a bit flip, torn write, or truncation anywhere in the payload is
detected on load, while the envelope stays an ordinary JSON field:
existing readers that index straight into the document
(``json.load(f)["jobs"]``, CI digest diffs, ``read_json``) keep
working unchanged.  Non-dict payloads (lists, scalars) are wrapped as
``{"envelope": {...}, "body": <payload>}``.

Documents written before this layer existed have no envelope; they
parse as *legacy* — valid, tick ``0`` — so pre-durability manifests
load, resume, and complete unchanged.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

from ..errors import ArtifactCorrupt

ENVELOPE_KEY = "envelope"
ENVELOPE_FMT = 1
#: wrapper key used when the payload itself is not a JSON object
BODY_KEY = "body"
#: tick reported for legacy (pre-envelope) documents
LEGACY_TICK = 0


def canonical_bytes(payload: object) -> bytes:
    """The byte string the envelope checksum covers."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def wrap_envelope(payload: object, schema: str,
                  tick: int = 1) -> dict:
    """Build the enveloped document for ``payload``."""
    canonical = canonical_bytes(payload)
    envelope = {
        "fmt": ENVELOPE_FMT,
        "schema": schema,
        "tick": int(tick),
        "sha256": hashlib.sha256(canonical).hexdigest(),
        "length": len(canonical),
    }
    if isinstance(payload, dict):
        if ENVELOPE_KEY in payload:
            raise ArtifactCorrupt(
                f"payload already carries an {ENVELOPE_KEY!r} field",
                reason="reserved-key")
        document = dict(payload)
        document[ENVELOPE_KEY] = envelope
        return document
    return {ENVELOPE_KEY: envelope, BODY_KEY: payload}


def parse_document(document: object
                   ) -> Tuple[object, Optional[str], int]:
    """Validate a loaded JSON document.

    Returns ``(payload, schema_tag, tick)``; ``schema_tag`` is None
    for legacy documents without an envelope.  Raises
    :class:`ArtifactCorrupt` when the envelope is malformed or the
    checksum/length does not match the payload.
    """
    if not isinstance(document, dict) or \
            ENVELOPE_KEY not in document:
        return document, None, LEGACY_TICK
    envelope = document[ENVELOPE_KEY]
    if not isinstance(envelope, dict):
        raise ArtifactCorrupt("envelope field is not an object",
                              reason="bad-envelope")
    if envelope.get("fmt") != ENVELOPE_FMT:
        raise ArtifactCorrupt(
            f"unknown envelope format {envelope.get('fmt')!r}",
            reason="bad-envelope")
    if BODY_KEY in document and len(document) == 2:
        payload = document[BODY_KEY]
    else:
        payload = {key: value for key, value in document.items()
                   if key != ENVELOPE_KEY}
    canonical = canonical_bytes(payload)
    length = envelope.get("length")
    if length != len(canonical):
        raise ArtifactCorrupt(
            f"length mismatch: envelope says {length}, "
            f"payload is {len(canonical)} canonical bytes",
            reason="length-mismatch")
    digest = hashlib.sha256(canonical).hexdigest()
    if envelope.get("sha256") != digest:
        raise ArtifactCorrupt(
            f"checksum mismatch: envelope says "
            f"{envelope.get('sha256')!r}, payload hashes to "
            f"{digest}", reason="checksum-mismatch")
    tick = envelope.get("tick", LEGACY_TICK)
    if not isinstance(tick, int) or tick < 0:
        raise ArtifactCorrupt(f"bad envelope tick {tick!r}",
                              reason="bad-envelope")
    return payload, str(envelope.get("schema", "")), tick
