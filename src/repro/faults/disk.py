"""Deterministic disk-fault injection for the durable storage layer.

The LBR/BTB/SGX-Step injector (:mod:`repro.faults.injector`) perturbs
the *simulated* machine; this one perturbs the checkpointing substrate
the campaigns persist through — the faults a long unattended
measurement campaign actually meets:

* ``torn-write`` — the struck write lands truncated at a seeded byte
  offset **directly on the target path** (modelling a crash on a
  filesystem whose rename was not atomic, or an fsync that lied),
  then the injector raises :class:`repro.errors.DiskFaultError` and
  plays dead, the way the process would have died mid-checkpoint;
* ``bit-flip`` — one seeded bit of the payload flips silently and the
  write otherwise succeeds (bit rot / DMA corruption); nothing
  raises — the damage must be *detected on load* by the envelope
  checksum;
* ``enospc`` — the write fails up front with the disk-full errno;
* ``fsync-fail`` — the data was accepted but durability cannot be
  promised (fsync returned EIO); the injector leaves the old target
  in place and plays dead, like a kernel that remounted the disk
  read-only.

Like every fault surface in this package the schedule is a pure
function of the seed: the struck write index, torn-byte offset, and
flipped bit come from one ``random.Random(f"disk-faults:{seed}")``
stream.  ``match`` restricts the blast radius by file name (default:
only ``manifest.json`` checkpoints), so a drill tears the checkpoint
it is aimed at, not every artifact in the campaign.
"""

from __future__ import annotations

import errno
import random
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import List, Optional, Tuple

from ..errors import DiskFaultError

MODE_TORN_WRITE = "torn-write"
MODE_BIT_FLIP = "bit-flip"
MODE_ENOSPC = "enospc"
MODE_FSYNC_FAIL = "fsync-fail"

DISK_FAULT_MODES = (MODE_TORN_WRITE, MODE_BIT_FLIP, MODE_ENOSPC,
                    MODE_FSYNC_FAIL)

#: modes after which the injector plays dead (every later matching
#: write fails too — the "process died / disk gone" half of the drill)
_CRASHING_MODES = (MODE_TORN_WRITE, MODE_ENOSPC, MODE_FSYNC_FAIL)


@dataclass
class DiskFaultInjector:
    """Strikes the Nth matching write with one deterministic fault.

    Installed process-globally via
    :func:`repro.storage.install_disk_faults`; every
    :func:`repro.storage.atomic_write_bytes` whose file name matches
    ``match`` consults it.
    """

    mode: str = MODE_TORN_WRITE
    seed: int = 0
    #: faults to inject before going quiet (bit-flip only; crashing
    #: modes play dead after their first strike regardless)
    strikes: int = 1
    #: strike on this (1-based) matching write; 0 = seeded in [2, 6]
    strike_after: int = 0
    #: glob applied to the written file's *name* (not its path)
    match: str = "manifest.json"
    #: (kind, path, detail) per injected fault, for drills and tests
    events: List[Tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in DISK_FAULT_MODES:
            raise DiskFaultError(
                f"unknown disk fault mode {self.mode!r}; known: "
                f"{', '.join(DISK_FAULT_MODES)}", kind=self.mode)
        if self.strikes < 1:
            raise DiskFaultError("strikes must be >= 1",
                                 kind=self.mode)
        self._rng = random.Random(f"disk-faults:{self.seed}")
        if self.strike_after < 1:
            self.strike_after = self._rng.randint(2, 6)
        self._seen = 0
        self._struck = 0
        self._next_strike = self.strike_after
        self._dead = False

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._struck >= self.strikes

    @property
    def dead(self) -> bool:
        return self._dead

    def matches(self, path) -> bool:
        return fnmatch(Path(path).name, self.match)

    # ------------------------------------------------------------------
    def before_write(self, path, data: bytes) -> bytes:
        """Consulted by the atomic writer before it touches disk.

        Returns the (possibly corrupted) payload to write, writes a
        torn target directly, or raises :class:`DiskFaultError`.
        """
        if self._dead:
            # After a crashing strike nothing at all reaches disk —
            # the process this models is gone — so even non-matching
            # writes (journals, artifacts) fail until the drill ends.
            raise DiskFaultError(
                f"disk offline after injected {self.mode} fault",
                path=str(path), kind=self.mode)
        if not self.matches(path):
            return data
        self._seen += 1
        if self.exhausted or self._seen < self._next_strike:
            return data
        self._struck += 1
        self._next_strike += max(1, self.strike_after)
        if self.mode == MODE_BIT_FLIP:
            return self._flip_bit(path, data)
        self._dead = True
        if self.mode == MODE_ENOSPC:
            self.events.append((self.mode, str(path), 0))
            raise DiskFaultError(
                f"injected ENOSPC writing {path}", path=str(path),
                kind=self.mode, errno_=errno.ENOSPC)
        if self.mode == MODE_FSYNC_FAIL:
            self.events.append((self.mode, str(path), 0))
            raise DiskFaultError(
                f"injected fsync failure writing {path} "
                f"(data not durable)", path=str(path),
                kind=self.mode, errno_=errno.EIO)
        return self._tear(path, data)

    # ------------------------------------------------------------------
    def _flip_bit(self, path, data: bytes) -> bytes:
        if not data:
            return data
        bit = self._rng.randrange(len(data) * 8)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        self.events.append((self.mode, str(path), bit))
        return bytes(corrupted)

    def _tear(self, path, data: bytes) -> bytes:
        offset = self._rng.randrange(1, max(2, len(data)))
        # Bypass the atomic writer: the whole point is a target that
        # holds only the first ``offset`` bytes, as if the rename
        # landed but the data blocks never made it out of the cache.
        with open(path, "wb") as handle:
            handle.write(data[:offset])
        self.events.append((self.mode, str(path), offset))
        raise DiskFaultError(
            f"injected torn write of {path} at byte {offset} "
            f"(process crashed mid-checkpoint)", path=str(path),
            kind=self.mode, errno_=errno.EIO)


def disk_chaos(mode: str, *, seed: int = 0, strikes: int = 1,
               strike_after: int = 0,
               match: str = "manifest.json"
               ) -> Optional[DiskFaultInjector]:
    """Build the injector for a ``--chaos`` storage drill (None for
    an unknown mode, so CLI wiring can fall through to other chaos
    families)."""
    if mode not in DISK_FAULT_MODES:
        return None
    return DiskFaultInjector(mode=mode, seed=seed, strikes=strikes,
                             strike_after=strike_after, match=match)
