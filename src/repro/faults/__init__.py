"""Deterministic fault injection for the simulated environment.

The paper's attacks work *because* the attacker tolerates a noisy
substrate: SGX-Step interrupts occasionally zero-step or multi-step,
LBR readings jitter, and co-resident processes evict BTB entries
between prime and probe.  This package perturbs the simulation through
the same surfaces a real machine would —

* ``cpu.lbr`` — dropped LBR records and extra timestamp jitter;
* ``cpu.btb`` — spurious evictions of valid entries (co-resident
  noise), always through the normal entry-invalidation path;
* ``sgx.sgxstep`` — zero-step (interrupt before anything retires) and
  multi-step (two retire units per interrupt) faults;
* ``system.kernel`` — preemption-point jitter (a slice is cut short by
  an involuntary context switch).

:mod:`repro.faults.disk` extends the same seeded-schedule discipline
to the *storage* substrate (torn writes, bit rot, ENOSPC, failed
fsync) for the durability drills in DESIGN.md §13.

Everything is driven by a seeded :class:`FaultInjector` with one RNG
stream *per surface*, so the injected schedule for any one surface is
a pure function of ``(plan, seed)`` — reproducible no matter how the
other surfaces happen to be consulted.
"""

from .disk import (DISK_FAULT_MODES, DiskFaultInjector, disk_chaos)
from .injector import FaultEvent, FaultInjector, StepFault
from .plans import (ACCEPTANCE_PLAN, CLEAN_PLAN, HOSTILE_PLAN,
                    NOISY_NEIGHBOUR_PLAN, FaultPlan, plan_by_name)

__all__ = [
    "ACCEPTANCE_PLAN",
    "CLEAN_PLAN",
    "DISK_FAULT_MODES",
    "DiskFaultInjector",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HOSTILE_PLAN",
    "NOISY_NEIGHBOUR_PLAN",
    "StepFault",
    "disk_chaos",
    "plan_by_name",
]
