"""The seeded fault injector and its wiring into the simulation.

One :class:`FaultInjector` owns an independent RNG stream per fault
surface, derived deterministically from ``(seed, surface)``.  Surfaces
consult their own stream only, so e.g. the LBR drop schedule does not
shift when BTB evictions are enabled on top — a property the
determinism tests pin down.

Wiring is explicit: :meth:`FaultInjector.attach` installs the injector
on a :class:`repro.system.kernel.Kernel` (and the core's LBR);
:meth:`FaultInjector.detach` restores the clean substrate.  The hooks
on the consuming side are all "consult if present":

* ``LBR.record`` asks :meth:`lbr_fault` whether the record drops and
  how much extra jitter it gets;
* ``Kernel.run_slice`` calls :meth:`on_slice` (spurious BTB evictions)
  and :meth:`preempt_limit` (involuntary preemption);
* ``SgxStepper.step`` asks :meth:`step_fault` for zero/multi-step.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .plans import FaultPlan


class StepFault(enum.Enum):
    """Outcome class of one SGX-Step interrupt."""

    NONE = "none"
    ZERO_STEP = "zero-step"
    MULTI_STEP = "multi-step"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for diagnostics and determinism tests."""

    surface: str          # "cpu.lbr" | "cpu.btb" | "sgx.sgxstep" | ...
    kind: str             # "drop" | "jitter" | "evict" | "zero-step" ...
    detail: float = 0.0   # magnitude (jitter cycles, evicted count, ...)


class FaultInjector:
    """Turns a :class:`FaultPlan` + seed into a deterministic fault
    schedule, delivered through the simulation's own surfaces."""

    SURFACES: Tuple[str, ...] = (
        "cpu.lbr", "cpu.btb", "sgx.sgxstep", "system.kernel",
    )

    def __init__(self, plan: FaultPlan, seed: int = 0, *,
                 record_events: bool = True):
        self.plan = plan
        self.seed = seed
        self.record_events = record_events
        #: every injected fault, in injection order (per-surface order
        #: is deterministic; cross-surface interleaving depends on the
        #: workload, which is why tests compare per-surface views)
        self.events: List[FaultEvent] = []
        self._rngs = {
            surface: random.Random(f"faults:{seed}:{surface}")
            for surface in self.SURFACES
        }
        self._attached: List[object] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _note(self, surface: str, kind: str,
              detail: float = 0.0) -> None:
        if self.record_events:
            self.events.append(FaultEvent(surface, kind, detail))

    def events_for(self, surface: str) -> List[FaultEvent]:
        return [e for e in self.events if e.surface == surface]

    def schedule_signature(self) -> Tuple[Tuple[str, str, float], ...]:
        """Hashable summary of every injected fault (determinism
        tests: same plan + seed + workload ⇒ identical signature)."""
        return tuple((e.surface, e.kind, e.detail) for e in self.events)

    # ------------------------------------------------------------------
    # cpu.lbr
    # ------------------------------------------------------------------
    def lbr_fault(self) -> Tuple[bool, float]:
        """Per LBR record: ``(dropped, extra_jitter_cycles)``."""
        rng = self._rngs["cpu.lbr"]
        dropped = rng.random() < self.plan.lbr_drop_rate
        jitter = 0.0
        if self.plan.lbr_jitter_sigma > 0.0:
            jitter = rng.gauss(0.0, self.plan.lbr_jitter_sigma)
        if dropped:
            self._note("cpu.lbr", "drop")
            return True, 0.0
        if jitter:
            self._note("cpu.lbr", "jitter", jitter)
        return False, jitter

    # ------------------------------------------------------------------
    # cpu.btb (fired from the kernel at slice boundaries)
    # ------------------------------------------------------------------
    def on_slice(self, core) -> None:
        """Slice boundary: maybe evict entries from the shared BTB,
        through the BTB's normal invalidation path."""
        if self.plan.btb_evict_rate <= 0.0:
            return
        rng = self._rngs["cpu.btb"]
        if rng.random() >= self.plan.btb_evict_rate:
            return
        evicted = 0
        for _ in range(self.plan.btb_evictions_per_event):
            if core.btb.evict_spurious(rng) is not None:
                evicted += 1
        if evicted:
            self._note("cpu.btb", "evict", float(evicted))

    # ------------------------------------------------------------------
    # sgx.sgxstep
    # ------------------------------------------------------------------
    def step_fault(self) -> StepFault:
        """Classify the next single-step interrupt."""
        zero = self.plan.zero_step_rate
        multi = self.plan.multi_step_rate
        if zero <= 0.0 and multi <= 0.0:
            return StepFault.NONE
        roll = self._rngs["sgx.sgxstep"].random()
        if roll < zero:
            self._note("sgx.sgxstep", "zero-step")
            return StepFault.ZERO_STEP
        if roll < zero + multi:
            self._note("sgx.sgxstep", "multi-step")
            return StepFault.MULTI_STEP
        return StepFault.NONE

    # ------------------------------------------------------------------
    # system.kernel
    # ------------------------------------------------------------------
    def preempt_limit(self) -> Optional[int]:
        """If the upcoming cooperative slice gets preempted, the
        retire-unit count at which the involuntary interrupt lands."""
        if self.plan.preempt_rate <= 0.0:
            return None
        rng = self._rngs["system.kernel"]
        if rng.random() >= self.plan.preempt_rate:
            return None
        limit = rng.randint(self.plan.preempt_min_retired,
                            self.plan.preempt_max_retired)
        self._note("system.kernel", "preempt", float(limit))
        return limit

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel) -> "FaultInjector":
        """Install this injector on ``kernel`` and its core's LBR."""
        kernel.fault_injector = self
        kernel.core.lbr.fault_injector = self
        self._attached.append(kernel)
        return self

    def detach(self, kernel) -> None:
        """Remove this injector from ``kernel`` (no-op if absent)."""
        if getattr(kernel, "fault_injector", None) is self:
            kernel.fault_injector = None
        if getattr(kernel.core.lbr, "fault_injector", None) is self:
            kernel.core.lbr.fault_injector = None
        if kernel in self._attached:
            self._attached.remove(kernel)
