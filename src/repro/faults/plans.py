"""Fault plans: named, composable descriptions of environmental noise.

A :class:`FaultPlan` is pure data — per-surface rates and magnitudes.
The :class:`repro.faults.FaultInjector` turns a plan plus a seed into a
deterministic fault schedule.  Plans are frozen so a sweep can derive
scaled variants with :meth:`FaultPlan.scaled` without aliasing state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


def _clamp_rate(value: float) -> float:
    return min(max(value, 0.0), 1.0)


@dataclass(frozen=True)
class FaultPlan:
    """Per-surface fault rates for one simulated environment."""

    name: str = "clean"

    # ----- cpu.lbr -----------------------------------------------------
    #: probability each retired-taken-branch record is silently dropped
    lbr_drop_rate: float = 0.0
    #: stddev of *additional* Gaussian jitter on elapsed-cycle readings
    #: (on top of the CpuGeneration.timing_noise the core always has)
    lbr_jitter_sigma: float = 0.0

    # ----- cpu.btb -----------------------------------------------------
    #: probability that a scheduler slice boundary evicts BTB entries
    #: (modelling a co-resident process touching the shared BTB)
    btb_evict_rate: float = 0.0
    #: entries evicted per eviction event
    btb_evictions_per_event: int = 1

    # ----- sgx.sgxstep -------------------------------------------------
    #: probability a single-step interrupt fires before anything
    #: retires (SGX-Step's zero-step problem)
    zero_step_rate: float = 0.0
    #: probability a single-step interrupt lands one unit late, so two
    #: retire units pass under one "step" (multi-step)
    multi_step_rate: float = 0.0

    # ----- system.kernel -----------------------------------------------
    #: probability a cooperative slice is cut short by an involuntary
    #: preemption (timer interrupt at a random point)
    preempt_rate: float = 0.0
    #: the premature interrupt lands uniformly in this retire-unit range
    preempt_min_retired: int = 50
    preempt_max_retired: int = 400

    def __post_init__(self) -> None:
        for field_name in ("lbr_drop_rate", "btb_evict_rate",
                           "zero_step_rate", "multi_step_rate",
                           "preempt_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{field_name} must be in [0, 1]: {value}")
        if self.lbr_jitter_sigma < 0.0:
            raise ValueError("lbr_jitter_sigma must be >= 0")
        if self.zero_step_rate + self.multi_step_rate > 1.0:
            raise ValueError(
                "zero_step_rate + multi_step_rate must be <= 1")
        if self.btb_evictions_per_event < 1:
            raise ValueError("btb_evictions_per_event must be >= 1")
        if not 0 < self.preempt_min_retired <= self.preempt_max_retired:
            raise ValueError("preempt retire window must be ordered "
                             "and positive")

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return any((
            self.lbr_drop_rate, self.lbr_jitter_sigma,
            self.btb_evict_rate, self.zero_step_rate,
            self.multi_step_rate, self.preempt_rate,
        ))

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every rate/magnitude scaled by ``factor``
        (rates clamped to 1; the step-fault pair renormalised if the
        scale would push their sum past 1)."""
        if factor < 0.0:
            raise ValueError("scale factor must be >= 0")
        zero = _clamp_rate(self.zero_step_rate * factor)
        multi = _clamp_rate(self.multi_step_rate * factor)
        total = zero + multi
        if total > 1.0:
            zero, multi = zero / total, multi / total
        return replace(
            self,
            name=f"{self.name}x{factor:g}",
            lbr_drop_rate=_clamp_rate(self.lbr_drop_rate * factor),
            lbr_jitter_sigma=self.lbr_jitter_sigma * factor,
            btb_evict_rate=_clamp_rate(self.btb_evict_rate * factor),
            zero_step_rate=zero,
            multi_step_rate=multi,
            preempt_rate=_clamp_rate(self.preempt_rate * factor),
        )

    def with_(self, **overrides) -> "FaultPlan":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: no faults at all (attaching this injector is a no-op)
CLEAN_PLAN = FaultPlan(name="clean")

#: the ISSUE acceptance scenario: 5 % LBR entry drops, 2 % spurious
#: BTB evictions, 5 % multi-step faults
ACCEPTANCE_PLAN = FaultPlan(
    name="acceptance",
    lbr_drop_rate=0.05,
    btb_evict_rate=0.02,
    multi_step_rate=0.05,
)

#: a busy co-tenant: BTB churn and measurement jitter, stepping fine
NOISY_NEIGHBOUR_PLAN = FaultPlan(
    name="noisy-neighbour",
    lbr_drop_rate=0.02,
    lbr_jitter_sigma=4.0,
    btb_evict_rate=0.10,
    btb_evictions_per_event=2,
    preempt_rate=0.05,
)

#: everything at once, hard — the stress ceiling for the policy
HOSTILE_PLAN = FaultPlan(
    name="hostile",
    lbr_drop_rate=0.10,
    lbr_jitter_sigma=6.0,
    btb_evict_rate=0.10,
    btb_evictions_per_event=2,
    zero_step_rate=0.05,
    multi_step_rate=0.10,
    preempt_rate=0.10,
)

_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (CLEAN_PLAN, ACCEPTANCE_PLAN, NOISY_NEIGHBOUR_PLAN,
                 HOSTILE_PLAN)
}


def plan_by_name(name: str) -> FaultPlan:
    """Look up a preset plan by name."""
    try:
        return _PLANS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PLANS))
        raise ValueError(f"unknown fault plan {name!r}; known: {known}")
