"""Watchdog: wall-clock timeouts and heartbeat staleness for workers.

Two independent kill conditions, checked every poll tick:

* **budget** — the attempt has been running longer than the job's
  ``timeout_s`` (catches non-terminating victims whose busy loop never
  misses a heartbeat: the GIL keeps the beat thread alive even while
  the interpreter spins);
* **stall** — the heartbeat timestamp is older than ``stall_timeout``
  (catches a frozen/deadlocked/SIGSTOPped worker whose clock no longer
  advances at all).

Either way the worker is SIGKILLed and the job marked ``TIMED_OUT``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

from .jobs import JobSpec


@dataclass
class WorkerHandle:
    """Parent-side view of one in-flight attempt."""

    spec: JobSpec
    attempt: int
    process: object                       # multiprocessing.Process
    conn: object                          # receiving end of the pipe
    heartbeat: object                     # multiprocessing.Value("d")
    started: float = field(default_factory=time.monotonic)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker and reap it (idempotent)."""
        if self.process.is_alive():
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


@dataclass
class BatchHandle:
    """Parent-side view of one in-flight batch attempt (``--vectorize``).

    One subprocess runs several jobs back-to-back; ``pending`` shrinks
    as per-job messages arrive, and whatever is left in it when the
    process dies or blows its budget is what the runner retries.  The
    wall-clock budget is the *sum* of the batched jobs' budgets — the
    jobs run sequentially, so that is exactly the solo guarantee.
    """

    specs: List[JobSpec]
    attempts: dict                        # job_id -> attempt number
    process: object
    conn: object
    heartbeat: object
    pending: Set[str] = field(default_factory=set)
    started: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if not self.pending:
            self.pending = {spec.job_id for spec in self.specs}

    @property
    def budget_s(self) -> float:
        return sum(spec.timeout_s for spec in self.specs)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the batch worker and reap it (idempotent)."""
        if self.process.is_alive():
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


@dataclass
class Watchdog:
    """Stateless policy object deciding when a worker must die."""

    #: heartbeat older than this means the worker is frozen, seconds
    stall_timeout: float = 10.0

    def overdue(self, handle: WorkerHandle,
                now: Optional[float] = None) -> Optional[str]:
        """A human-readable kill reason, or None if the worker is
        healthy."""
        return self._overdue(handle, handle.spec.timeout_s, now)

    def overdue_batch(self, handle: BatchHandle,
                      now: Optional[float] = None) -> Optional[str]:
        """Same policy for a batch worker, against the batch budget."""
        return self._overdue(handle, handle.budget_s, now)

    def _overdue(self, handle, budget_s: float,
                 now: Optional[float]) -> Optional[str]:
        now = time.monotonic() if now is None else now
        elapsed = now - handle.started
        if elapsed > budget_s:
            return (f"exceeded {budget_s:.1f}s wall-clock "
                    f"budget (ran {elapsed:.1f}s)")
        last_beat = handle.heartbeat.value
        if last_beat > 0 and now - last_beat > self.stall_timeout:
            return (f"heartbeat stalled for {now - last_beat:.1f}s "
                    f"(limit {self.stall_timeout:.1f}s)")
        return None
