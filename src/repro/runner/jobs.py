"""Campaign jobs: what runs, with which knobs, and where it stands.

A :class:`JobSpec` is pure data — fully picklable and JSON-serialisable
so it can cross the worker process boundary and survive in the
manifest.  A :class:`JobRecord` is the spec plus its mutable lifecycle
state, persisted after every transition.

Job lifecycle state machine::

    PENDING ──▶ RUNNING ──▶ COMPLETED                (terminal, success)
                   │
                   ├──▶ FAILED     ──▶ PENDING (retry, transient error)
                   ├──▶ TIMED_OUT  ──▶ PENDING (retry)
                   └──▶ CRASHED    ──▶ PENDING (retry)

FAILED / TIMED_OUT / CRASHED become terminal once the attempt budget is
spent.  Resume treats anything non-COMPLETED (including a RUNNING state
left behind by a killed campaign) as runnable again.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CampaignError


class JobStatus(str, enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    TIMED_OUT = "TIMED_OUT"
    CRASHED = "CRASHED"

    @property
    def terminal_success(self) -> bool:
        return self is JobStatus.COMPLETED

    @property
    def retryable(self) -> bool:
        """States a fresh attempt may recover from."""
        return self in (JobStatus.FAILED, JobStatus.TIMED_OUT,
                        JobStatus.CRASHED, JobStatus.RUNNING)


#: job kinds the worker knows how to execute
KIND_EXPERIMENT = "experiment"
#: deterministic synthetic jobs for the runner's own tests/chaos smoke
KIND_SELFTEST = "selftest"

VALID_KINDS = (KIND_EXPERIMENT, KIND_SELFTEST)


@dataclass(frozen=True)
class JobSpec:
    """One unit of campaign work (immutable, picklable)."""

    job_id: str
    kind: str = KIND_EXPERIMENT
    #: experiment registry name, or the selftest program string
    name: str = ""
    fast: bool = False
    seed: Optional[int] = None
    #: fault-plan preset name carried by this job ("" = no plan)
    plan: str = ""
    #: multiple applied to the plan's rates (FaultPlan.scaled)
    plan_factor: float = 1.0
    #: wall-clock budget per attempt, seconds
    timeout_s: float = 300.0
    #: total attempts allowed (1 = no retry)
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise CampaignError(f"unknown job kind {self.kind!r}")
        if self.timeout_s <= 0:
            raise CampaignError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "name": self.name,
            "fast": self.fast,
            "seed": self.seed,
            "plan": self.plan,
            "plan_factor": self.plan_factor,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobSpec":
        return cls(**payload)  # type: ignore[arg-type]

    def resolve_plan(self):
        """The scaled :class:`FaultPlan` this job carries, or None."""
        if not self.plan:
            return None
        from ..faults import plan_by_name
        plan = plan_by_name(self.plan)
        if self.plan_factor != 1.0:
            plan = plan.scaled(self.plan_factor)
        return plan


@dataclass
class JobRecord:
    """A spec plus its persisted lifecycle state."""

    spec: JobSpec
    status: JobStatus = JobStatus.PENDING
    attempts: int = 0
    #: wall-clock seconds of the successful (or final) attempt
    duration_s: float = 0.0
    #: sha256 of the job's output text (COMPLETED only)
    digest: str = ""
    #: relative artifact path under the campaign directory
    artifact: str = ""
    #: message of the final error (non-COMPLETED terminal states)
    error: str = ""
    #: deterministic telemetry counter snapshot from the successful
    #: attempt (see :mod:`repro.telemetry`; empty for pre-telemetry
    #: manifests and failed jobs)
    counters: Dict[str, int] = field(default_factory=dict)
    #: monotonic timestamp before which no retry may launch
    eligible_at: float = field(default=0.0, repr=False, compare=False)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def attempts_left(self) -> int:
        return max(0, self.spec.max_attempts - self.attempts)

    def runnable(self, now: Optional[float] = None) -> bool:
        if self.status is JobStatus.PENDING:
            now = time.monotonic() if now is None else now
            return now >= self.eligible_at
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "status": self.status.value,
            "attempts": self.attempts,
            "duration_s": round(self.duration_s, 6),
            "digest": self.digest,
            "artifact": self.artifact,
            "error": self.error,
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobRecord":
        return cls(
            spec=JobSpec.from_dict(payload["spec"]),
            status=JobStatus(payload["status"]),
            attempts=int(payload["attempts"]),
            duration_s=float(payload["duration_s"]),
            digest=str(payload["digest"]),
            artifact=str(payload["artifact"]),
            error=str(payload["error"]),
            counters=dict(payload.get("counters", {})),
        )


def experiment_jobs(*, fast: bool = False, seed: Optional[int] = None,
                    plan: str = "", plan_factor: float = 1.0,
                    timeout_s: float = 300.0, max_attempts: int = 3,
                    only: Optional[List[str]] = None) -> List[JobSpec]:
    """One job per registered experiment (the default campaign).

    ``only`` filters by experiment name, preserving registry order;
    unknown names raise :class:`CampaignError` up front rather than
    failing jobs mid-campaign.
    """
    from ..experiments.common import EXPERIMENTS
    names = list(EXPERIMENTS)
    if only is not None:
        unknown = [name for name in only if name not in EXPERIMENTS]
        if unknown:
            raise CampaignError(
                f"unknown experiment(s) {', '.join(unknown)}; "
                f"known: {', '.join(names)}")
        names = [name for name in names if name in set(only)]
    return [
        JobSpec(job_id=name, kind=KIND_EXPERIMENT, name=name,
                fast=fast, seed=seed, plan=plan,
                plan_factor=plan_factor, timeout_s=timeout_s,
                max_attempts=max_attempts)
        for name in names
    ]


def specs_from_payload(payload: Dict[str, object]) -> List[JobSpec]:
    """Build the job list of a service submission (``POST /campaigns``).

    Two payload shapes, mirroring the CLI:

    * ``{"jobs": [<JobSpec dict>, ...]}`` — explicit specs, validated
      through :meth:`JobSpec.from_dict` (unknown fields and bad values
      raise :class:`CampaignError`, never a bare ``TypeError``);
    * ``{"experiments": {"only": [...], "fast": ..., "seed": ...,
      "timeout_s": ..., "max_attempts": ..., "plan": ...,
      "plan_factor": ...}}`` — one job per registered experiment,
      resolved through the experiment registry like
      ``repro campaign --only``.
    """
    jobs = payload.get("jobs")
    if jobs is not None:
        if not isinstance(jobs, list) or not jobs:
            raise CampaignError(
                "payload 'jobs' must be a non-empty list of job specs")
        specs: List[JobSpec] = []
        seen = set()
        for entry in jobs:
            if not isinstance(entry, dict):
                raise CampaignError(
                    f"job spec must be an object, got {entry!r}")
            try:
                spec = JobSpec.from_dict(entry)
            except TypeError as error:
                raise CampaignError(
                    f"bad job spec {entry!r}: {error}") from None
            if not spec.name:
                raise CampaignError(
                    f"job spec {spec.job_id!r} has no program/"
                    f"experiment name")
            if spec.job_id in seen:
                raise CampaignError(
                    f"duplicate job id {spec.job_id!r}")
            seen.add(spec.job_id)
            specs.append(spec)
        return specs
    experiments = payload.get("experiments")
    if experiments is not None:
        if not isinstance(experiments, dict):
            raise CampaignError("payload 'experiments' must be an "
                                "object of experiment_jobs options")
        allowed = {"only", "fast", "seed", "plan", "plan_factor",
                   "timeout_s", "max_attempts"}
        unknown = set(experiments) - allowed
        if unknown:
            raise CampaignError(
                f"unknown experiments option(s) "
                f"{', '.join(sorted(unknown))}")
        options = dict(experiments)
        only = options.pop("only", None)
        if only is not None and not isinstance(only, list):
            raise CampaignError("experiments 'only' must be a list")
        return experiment_jobs(only=only, **options)
    raise CampaignError(
        "payload must carry 'jobs' (explicit specs) or "
        "'experiments' (registry selection)")
