"""Atomic artifact writes for campaign output.

Compatibility shim: the implementation moved to
:mod:`repro.storage.atomic` so the CLI, runner, perf suite, and
campaign service share one writer (and one disk-fault choke point).
Import from :mod:`repro.storage` in new code.
"""

from __future__ import annotations

from ..storage.atomic import (PathLike, _fsync_dir, atomic_write,
                              atomic_write_bytes, atomic_write_json,
                              atomic_write_text, digest_text,
                              read_json)

__all__ = [
    "PathLike",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "digest_text",
    "read_json",
]

_ = _fsync_dir  # re-exported for existing internal callers
