"""Atomic artifact writes for campaign output.

Every file the runner (or an experiment harness) persists goes through
:func:`atomic_write_bytes`: the payload is written to a temporary file
in the *same directory*, fsynced, then :func:`os.replace`'d over the
destination.  A SIGKILL at any point leaves either the old content or
the new content — never a truncated file.  The directory entry is
fsynced too (best-effort) so the rename survives a power cut on
journalled filesystems.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

PathLike = Union[str, os.PathLike]


def digest_text(text: str) -> str:
    """Stable content digest used by the manifest to compare job
    results across runs (clean vs resumed campaigns must byte-match)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:          # platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    _fsync_dir(path.parent)
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, payload: object) -> Path:
    """Serialize deterministically (sorted keys, stable layout) so
    identical campaign states produce byte-identical manifests."""
    text = json.dumps(payload, indent=2, sort_keys=True,
                      ensure_ascii=False) + "\n"
    return atomic_write_text(path, text)


def read_json(path: PathLike) -> object:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
