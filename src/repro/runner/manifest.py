"""The persisted campaign state: ``runs/<campaign-id>/manifest.json``.

The manifest is the single source of truth for checkpoint/resume.  It
is rewritten (atomically) after **every** job state transition, so a
SIGKILL of the whole campaign at any instant leaves a loadable
manifest whose COMPLETED entries can be trusted — their artifacts were
atomically renamed into place *before* the manifest recorded them.

Schema (``schema`` bumps on incompatible change)::

    {
      "schema": 2,
      "campaign_id": "...",
      "created": "2026-08-06T12:00:00",   # informational only
      "seed": 0,                          # campaign-level default seed
      "interrupted": false,               # a chaos/abort left work behind
      "shard_id": "",                     # v2: "" = unsharded campaign
      "parent": "",                       # v2: owning service campaign
      "jobs": { "<job_id>": JobRecord, ... }
    }

Schema v2 (the sharded campaign service, DESIGN.md §12) only *adds*
fields: ``shard_id`` names the shard this manifest belongs to and
``parent`` the service campaign that owns it.  The loader defaults
both for schema-v1 manifests written by the pre-service runner, so a
v1 campaign loads, resumes, and completes unchanged under the sharded
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import CampaignError
from ..storage import checkpoint, load_checkpoint
from .jobs import JobRecord, JobSpec, JobStatus

SCHEMA_VERSION = 2
#: schemas the defaulting loader accepts (v1 = pre-service manifests)
SUPPORTED_SCHEMAS = (1, 2)
#: envelope schema tag on every journaled manifest checkpoint
SCHEMA_TAG = "repro.runner.manifest"

MANIFEST_NAME = "manifest.json"
ARTIFACT_DIR = "artifacts"


@dataclass
class RunManifest:
    """All persisted state of one campaign."""

    campaign_id: str
    directory: Path
    created: str = ""
    seed: Optional[int] = None
    interrupted: bool = False
    #: shard this manifest belongs to ("" = standalone campaign)
    shard_id: str = ""
    #: service campaign owning this shard ("" = standalone campaign)
    parent: str = ""
    jobs: Dict[str, JobRecord] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, campaign_id: str, runs_dir: Path, *,
               specs: List[JobSpec], seed: Optional[int],
               created: str = "", shard_id: str = "",
               parent: str = "") -> "RunManifest":
        directory = Path(runs_dir) / campaign_id
        manifest = cls(campaign_id=campaign_id, directory=directory,
                       created=created, seed=seed, shard_id=shard_id,
                       parent=parent)
        for spec in specs:
            if spec.job_id in manifest.jobs:
                raise CampaignError(
                    f"duplicate job id {spec.job_id!r}")
            manifest.jobs[spec.job_id] = JobRecord(spec=spec)
        return manifest

    @classmethod
    def load(cls, runs_dir: Path, campaign_id: str) -> "RunManifest":
        directory = Path(runs_dir) / campaign_id
        path = directory / MANIFEST_NAME
        try:
            # Journaled load: an interrupted checkpoint is replayed
            # from the WAL, a corrupted one quarantined and healed
            # (ArtifactCorrupt propagates when nothing recovers — the
            # service layer turns that into shard-loss accounting).
            payload = load_checkpoint(path, expect_schema=SCHEMA_TAG)
        except FileNotFoundError:
            raise CampaignError(
                f"no manifest for campaign {campaign_id!r} "
                f"under {runs_dir}") from None
        schema = payload.get("schema") \
            if isinstance(payload, dict) else None
        if schema not in SUPPORTED_SCHEMAS:
            raise CampaignError(
                f"manifest schema {schema!r} "
                f"not in supported {SUPPORTED_SCHEMAS}")
        manifest = cls(
            campaign_id=str(payload["campaign_id"]),
            directory=directory,
            created=str(payload.get("created", "")),
            seed=payload.get("seed"),
            interrupted=bool(payload.get("interrupted", False)),
            # v2 shard fields: defaulted for v1 manifests so pre-service
            # campaigns load and resume under the sharded scheduler
            shard_id=str(payload.get("shard_id", "")),
            parent=str(payload.get("parent", "")),
        )
        for job_id, record in payload["jobs"].items():
            manifest.jobs[job_id] = JobRecord.from_dict(record)
        return manifest

    @property
    def path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def artifact_dir(self) -> Path:
        return self.directory / ARTIFACT_DIR

    def save(self) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "campaign_id": self.campaign_id,
            "created": self.created,
            "seed": self.seed,
            "interrupted": self.interrupted,
            "shard_id": self.shard_id,
            "parent": self.parent,
            "jobs": {job_id: record.to_dict()
                     for job_id, record in self.jobs.items()},
        }
        checkpoint(self.path, payload, SCHEMA_TAG)

    def add_specs(self, specs: List[JobSpec]) -> List[str]:
        """Append fresh PENDING jobs (the cross-shard reassignment
        path).  Specs whose job id already exists are skipped — a
        reassignment replayed on resume must stay idempotent."""
        added: List[str] = []
        for spec in specs:
            if spec.job_id in self.jobs:
                continue
            self.jobs[spec.job_id] = JobRecord(spec=spec)
            added.append(spec.job_id)
        return added

    # ------------------------------------------------------------------
    # resume semantics
    # ------------------------------------------------------------------
    def reset_for_resume(self) -> List[str]:
        """Make every non-COMPLETED job runnable again and return the
        ids that will re-run.  RUNNING entries are leftovers of a
        campaign process that died mid-flight — their workers are long
        gone, so they restart (without charging an extra attempt,
        since the interrupted attempt never reported a result)."""
        rerun: List[str] = []
        for record in self.jobs.values():
            if record.status is JobStatus.COMPLETED:
                continue
            record.status = JobStatus.PENDING
            record.attempts = 0          # fresh retry budget
            record.eligible_at = 0.0
            record.error = ""
            rerun.append(record.job_id)
        self.interrupted = False
        return rerun

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records(self) -> List[JobRecord]:
        return list(self.jobs.values())

    def by_status(self, status: JobStatus) -> List[JobRecord]:
        return [r for r in self.jobs.values() if r.status is status]

    def all_completed(self) -> bool:
        return all(r.status is JobStatus.COMPLETED
                   for r in self.jobs.values())

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.jobs.values():
            out[record.status.value] = out.get(record.status.value,
                                               0) + 1
        return out

    def digests(self) -> Dict[str, str]:
        """job id -> result digest, for clean-vs-resumed comparisons."""
        return {job_id: record.digest
                for job_id, record in self.jobs.items()}


def list_campaigns(runs_dir: Path) -> List[str]:
    """Campaign ids with a manifest under ``runs_dir``, sorted."""
    runs_dir = Path(runs_dir)
    if not runs_dir.is_dir():
        return []
    return sorted(
        entry.name for entry in runs_dir.iterdir()
        if (entry / MANIFEST_NAME).is_file()
    )
