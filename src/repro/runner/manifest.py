"""The persisted campaign state: ``runs/<campaign-id>/manifest.json``.

The manifest is the single source of truth for checkpoint/resume.  It
is rewritten (atomically) after **every** job state transition, so a
SIGKILL of the whole campaign at any instant leaves a loadable
manifest whose COMPLETED entries can be trusted — their artifacts were
atomically renamed into place *before* the manifest recorded them.

Schema (``schema`` bumps on incompatible change)::

    {
      "schema": 1,
      "campaign_id": "...",
      "created": "2026-08-06T12:00:00",   # informational only
      "seed": 0,                          # campaign-level default seed
      "interrupted": false,               # a chaos/abort left work behind
      "jobs": { "<job_id>": JobRecord, ... }
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import CampaignError
from .artifacts import atomic_write_json, read_json
from .jobs import JobRecord, JobSpec, JobStatus

SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARTIFACT_DIR = "artifacts"


@dataclass
class RunManifest:
    """All persisted state of one campaign."""

    campaign_id: str
    directory: Path
    created: str = ""
    seed: Optional[int] = None
    interrupted: bool = False
    jobs: Dict[str, JobRecord] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, campaign_id: str, runs_dir: Path, *,
               specs: List[JobSpec], seed: Optional[int],
               created: str = "") -> "RunManifest":
        directory = Path(runs_dir) / campaign_id
        manifest = cls(campaign_id=campaign_id, directory=directory,
                       created=created, seed=seed)
        for spec in specs:
            if spec.job_id in manifest.jobs:
                raise CampaignError(
                    f"duplicate job id {spec.job_id!r}")
            manifest.jobs[spec.job_id] = JobRecord(spec=spec)
        return manifest

    @classmethod
    def load(cls, runs_dir: Path, campaign_id: str) -> "RunManifest":
        directory = Path(runs_dir) / campaign_id
        path = directory / MANIFEST_NAME
        if not path.exists():
            raise CampaignError(
                f"no manifest for campaign {campaign_id!r} "
                f"under {runs_dir}")
        payload = read_json(path)
        if payload.get("schema") != SCHEMA_VERSION:
            raise CampaignError(
                f"manifest schema {payload.get('schema')!r} "
                f"!= supported {SCHEMA_VERSION}")
        manifest = cls(
            campaign_id=str(payload["campaign_id"]),
            directory=directory,
            created=str(payload.get("created", "")),
            seed=payload.get("seed"),
            interrupted=bool(payload.get("interrupted", False)),
        )
        for job_id, record in payload["jobs"].items():
            manifest.jobs[job_id] = JobRecord.from_dict(record)
        return manifest

    @property
    def path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def artifact_dir(self) -> Path:
        return self.directory / ARTIFACT_DIR

    def save(self) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "campaign_id": self.campaign_id,
            "created": self.created,
            "seed": self.seed,
            "interrupted": self.interrupted,
            "jobs": {job_id: record.to_dict()
                     for job_id, record in self.jobs.items()},
        }
        atomic_write_json(self.path, payload)

    # ------------------------------------------------------------------
    # resume semantics
    # ------------------------------------------------------------------
    def reset_for_resume(self) -> List[str]:
        """Make every non-COMPLETED job runnable again and return the
        ids that will re-run.  RUNNING entries are leftovers of a
        campaign process that died mid-flight — their workers are long
        gone, so they restart (without charging an extra attempt,
        since the interrupted attempt never reported a result)."""
        rerun: List[str] = []
        for record in self.jobs.values():
            if record.status is JobStatus.COMPLETED:
                continue
            record.status = JobStatus.PENDING
            record.attempts = 0          # fresh retry budget
            record.eligible_at = 0.0
            record.error = ""
            rerun.append(record.job_id)
        self.interrupted = False
        return rerun

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records(self) -> List[JobRecord]:
        return list(self.jobs.values())

    def by_status(self, status: JobStatus) -> List[JobRecord]:
        return [r for r in self.jobs.values() if r.status is status]

    def all_completed(self) -> bool:
        return all(r.status is JobStatus.COMPLETED
                   for r in self.jobs.values())

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.jobs.values():
            out[record.status.value] = out.get(record.status.value,
                                               0) + 1
        return out

    def digests(self) -> Dict[str, str]:
        """job id -> result digest, for clean-vs-resumed comparisons."""
        return {job_id: record.digest
                for job_id, record in self.jobs.items()}


def list_campaigns(runs_dir: Path) -> List[str]:
    """Campaign ids with a manifest under ``runs_dir``, sorted."""
    runs_dir = Path(runs_dir)
    if not runs_dir.is_dir():
        return []
    return sorted(
        entry.name for entry in runs_dir.iterdir()
        if (entry / MANIFEST_NAME).is_file()
    )
