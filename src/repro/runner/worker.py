"""Subprocess worker: executes one job attempt in isolation.

The parent forks one process per attempt; the child

1. starts a daemon heartbeat thread that stamps a shared
   ``multiprocessing.Value`` with ``time.monotonic()`` so the watchdog
   can tell a slow worker from a dead one;
2. installs the ambient interpreter deadline
   (:func:`repro.cpu.interp.set_ambient_deadline`) slightly inside the
   job's wall-clock budget, so a non-terminating victim raises
   :class:`SimulationTimeout` in-band before the watchdog has to
   SIGKILL anything;
3. runs the job inside a counters-only :func:`repro.telemetry.session`
   and ships ``("ok", output, duration, counters)`` or
   ``("error", exception, message, transient, duration)`` back over
   the result pipe.  Exceptions cross the process boundary pickled
   (see the ``__reduce__`` support in :mod:`repro.errors`); anything
   unpicklable degrades to its message — and if even *that* send fails
   (broken pipe after a parent-side kill) the worker exits with
   :data:`SEND_FAILED_EXIT` instead of dying silently as a 0.

Worker death without a message (SIGKILL, segfault) is detected by the
parent from the exit code and treated as a transient
:class:`WorkerCrashed`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from hashlib import sha256
from typing import Optional, Tuple

from .. import telemetry
from ..errors import (CalibrationError, CampaignError, MeasurementError,
                      MeasurementUnstable, ReproError, SimulationTimeout)
from .jobs import KIND_EXPERIMENT, KIND_SELFTEST, JobSpec

#: seconds between heartbeat stamps
HEARTBEAT_INTERVAL = 0.05

#: exit code when no result message could reach the parent at all —
#: nonzero so the parent's died-without-a-result path classifies the
#: attempt as a crash instead of mistaking it for a clean exit
SEND_FAILED_EXIT = 70

#: fraction of the wall-clock budget given to the in-band interpreter
#: deadline (the watchdog keeps the full budget as the hard backstop)
_DEADLINE_FRACTION = 0.9

#: error classes a fresh attempt may recover from
TRANSIENT_ERRORS = (MeasurementError, SimulationTimeout,
                    CalibrationError)


def is_transient(error: BaseException) -> bool:
    return isinstance(error, TRANSIENT_ERRORS)


# ----------------------------------------------------------------------
# selftest jobs — deterministic synthetic workloads for the runner's
# own tests, the chaos smoke, and CI
# ----------------------------------------------------------------------
def _run_selftest(spec: JobSpec, attempt: int) -> str:
    """Interpret a selftest program string.

    * ``hang`` — spin forever (only the watchdog can end it);
    * ``sleep:<s>`` — sleep then emit a deterministic line;
    * ``work:<rounds>[:<sleep_s>]`` — a seeded sha256 chain (the
      optional sleep widens the chaos-kill window);
    * ``fail:<k>`` — raise :class:`MeasurementUnstable` on the first
      ``k`` attempts, succeed afterwards;
    * ``crash:<k>`` — SIGKILL ourselves on the first ``k`` attempts;
    * ``badpickle`` — raise an exception whose class cannot be
      pickled (it is function-local), exercising ``_send_error``'s
      fallback paths.
    """
    program, _, argument = spec.name.partition(":")
    if program == "hang":
        while True:                     # pragma: no cover - killed
            time.sleep(0.01)
    if program == "sleep":
        time.sleep(float(argument or "0.1"))
        return f"slept {argument or '0.1'}s (seed={spec.seed})"
    if program == "work":
        rounds_text, _, sleep_text = argument.partition(":")
        if sleep_text:
            time.sleep(float(sleep_text))
        rounds = int(rounds_text or "1000")
        value = f"seed={spec.seed}".encode()
        for _ in range(rounds):
            value = sha256(value).digest()
        # deterministic counters so service-level aggregation has
        # real (and seed-stable) snapshots to merge in tests/CI
        telemetry.count("selftest.jobs")
        telemetry.count("selftest.rounds", rounds)
        return f"work digest {value.hex()}"
    if program == "fail":
        if attempt <= int(argument or "1"):
            raise MeasurementUnstable(
                f"selftest fault on attempt {attempt}",
                attempts=attempt)
        return "recovered"
    if program == "crash":
        if attempt <= int(argument or "1"):
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived"
    if program == "badpickle":
        class _UnpicklableError(Exception):
            """Function-local, so pickle cannot resolve the class."""
        raise _UnpicklableError(
            f"unpicklable selftest error (seed={spec.seed})")
    raise CampaignError(f"unknown selftest program {spec.name!r}")


def execute_job(spec: JobSpec, attempt: int = 1) -> str:
    """Run one job attempt in-process and return its output text."""
    if spec.kind == KIND_SELFTEST:
        return _run_selftest(spec, attempt)
    if spec.kind == KIND_EXPERIMENT:
        from ..experiments.common import RunRequest, run_experiment
        request = RunRequest(fast=spec.fast, seed=spec.seed,
                             plan=spec.resolve_plan())
        return run_experiment(spec.name, request)
    raise CampaignError(f"unknown job kind {spec.kind!r}")


# ----------------------------------------------------------------------
# child process entry
# ----------------------------------------------------------------------
def _beat(heartbeat, stop: threading.Event) -> None:
    while not stop.is_set():
        heartbeat.value = time.monotonic()
        stop.wait(HEARTBEAT_INTERVAL)


def _send_error(conn, error: BaseException, duration: float) -> None:
    payload: Tuple = ("error", error, str(error) or repr(error),
                      is_transient(error), duration)
    try:
        conn.send(payload)
        return
    except Exception:
        # Unpicklable exception (shouldn't happen for ReproErrors —
        # pinned by tests — but third-party errors make no promises):
        # degrade to the message-only payload.
        pass
    try:
        conn.send(("error", None, f"{type(error).__name__}: {error}",
                   is_transient(error), duration))
    except Exception:
        # The fallback send failed too — typically a broken pipe after
        # a parent-side kill.  Nothing can reach the parent, so exit
        # nonzero: the parent's died-without-a-result path is the only
        # remaining reaper and must not see a clean exit code.
        os._exit(SEND_FAILED_EXIT)


def worker_main(spec_dict: dict, attempt: int, conn, heartbeat) -> None:
    """Entry point of the worker subprocess."""
    spec = JobSpec.from_dict(spec_dict)
    stop = threading.Event()
    thread = threading.Thread(target=_beat, args=(heartbeat, stop),
                              daemon=True)
    thread.start()
    started = time.monotonic()
    from ..cpu.interp import set_ambient_deadline
    set_ambient_deadline(started + spec.timeout_s * _DEADLINE_FRACTION)
    try:
        # Counters only (no trace): the snapshot rides back with the
        # result and lands in the manifest's per-job record.
        with telemetry.session() as sink:
            output = execute_job(spec, attempt)
    except ReproError as error:
        _send_error(conn, error, time.monotonic() - started)
    except BaseException as error:      # noqa: BLE001 - report, don't die
        _send_error(conn, error, time.monotonic() - started)
    else:
        conn.send(("ok", output, time.monotonic() - started,
                   sink.snapshot()))
    finally:
        set_ambient_deadline(None)
        stop.set()
        conn.close()


def _send_batch_error(conn, job_id: str, error: BaseException,
                      duration: float) -> None:
    """Per-job error send for batch workers, with the same pickle
    degradation ladder as :func:`_send_error`."""
    try:
        conn.send((job_id, "error", error, str(error) or repr(error),
                   is_transient(error), duration))
        return
    except Exception:
        pass
    try:
        conn.send((job_id, "error", None,
                   f"{type(error).__name__}: {error}",
                   is_transient(error), duration))
    except Exception:
        os._exit(SEND_FAILED_EXIT)


def batch_main(spec_dicts: list, attempts: list, conn,
               heartbeat) -> None:
    """Entry point of a **batch** worker (``--vectorize N``).

    Runs N jobs back-to-back in one subprocess, amortizing the fork +
    import + simulator warm-up cost that dominates short campaign
    jobs.  One message is sent *per job as it settles* — prefixed with
    its job id — so a mid-batch crash loses only the unfinished jobs:
    the parent retries exactly the jobs it never heard about.  Each
    job still gets its own ambient deadline and its own counters-only
    telemetry session, so per-job records are indistinguishable from
    solo-worker runs.
    """
    stop = threading.Event()
    thread = threading.Thread(target=_beat, args=(heartbeat, stop),
                              daemon=True)
    thread.start()
    from ..cpu.interp import set_ambient_deadline
    try:
        for spec_dict, attempt in zip(spec_dicts, attempts):
            spec = JobSpec.from_dict(spec_dict)
            started = time.monotonic()
            set_ambient_deadline(
                started + spec.timeout_s * _DEADLINE_FRACTION)
            try:
                with telemetry.session() as sink:
                    output = execute_job(spec, attempt)
            except BaseException as error:  # noqa: BLE001
                _send_batch_error(conn, spec.job_id, error,
                                  time.monotonic() - started)
            else:
                conn.send((spec.job_id, "ok", output,
                           time.monotonic() - started, sink.snapshot()))
            finally:
                set_ambient_deadline(None)
    finally:
        stop.set()
        conn.close()
