"""Crash-tolerant campaign execution.

The paper's results are *campaigns* — thousands of repeated probe runs
per figure — and PR 1's resilient measurement policy only protects a
single measurement.  This package protects the layer above it:

* every job runs in a **subprocess-isolated worker** (a crash or hang
  loses one attempt, never the campaign);
* a **watchdog** SIGKILLs workers that blow their wall-clock budget or
  stop heartbeating, marking the job ``TIMED_OUT``;
* transient failures (:class:`MeasurementUnstable`, worker crashes,
  timeouts) retry with **exponential backoff + jitter** up to a
  per-job attempt budget;
* all state checkpoints into a :class:`RunManifest` under
  ``runs/<campaign-id>/`` through **atomic writes**, so ``--resume``
  skips completed jobs and re-runs only the rest — converging to
  byte-identical results;
* a **chaos mode** (``--chaos kill-worker``) SIGKILLs random workers
  mid-campaign and aborts, proving the resume path end-to-end.

See DESIGN.md §8 for the job lifecycle state machine and manifest
schema.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .. import telemetry
from ..errors import CampaignError, SimulationTimeout, WorkerCrashed
from .artifacts import (atomic_write_bytes, atomic_write_json,
                        atomic_write_text, digest_text)
from .jobs import (JobRecord, JobSpec, JobStatus, KIND_EXPERIMENT,
                   KIND_SELFTEST, experiment_jobs, specs_from_payload)
from .manifest import MANIFEST_NAME, RunManifest, list_campaigns
from .watchdog import BatchHandle, Watchdog, WorkerHandle
from .worker import batch_main, execute_job, is_transient, worker_main

__all__ = [
    "BatchHandle",
    "CampaignRunner",
    "ChaosMonkey",
    "JobRecord",
    "JobSpec",
    "JobStatus",
    "KIND_EXPERIMENT",
    "KIND_SELFTEST",
    "MANIFEST_NAME",
    "RunManifest",
    "Watchdog",
    "WorkerHandle",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "batch_main",
    "digest_text",
    "execute_job",
    "experiment_jobs",
    "is_transient",
    "list_campaigns",
    "new_campaign_id",
    "run_campaign",
    "specs_from_payload",
]

#: chaos modes the runner understands
CHAOS_KILL_WORKER = "kill-worker"


#: process-local sequence folded into generated ids so two campaigns
#: created in the same wall-clock second by the same process never
#: collide (the pid component covers concurrent submitters)
_ID_SEQUENCE = itertools.count()


def new_campaign_id(prefix: str = "campaign") -> str:
    """A sortable, human-readable, **collision-safe** campaign id.

    The wall-clock stamp has second granularity, so two campaigns (or
    two shards) starting concurrently used to race for the same run
    directory; the pid + process-local counter suffix makes the id
    unique across processes and within one.  Nothing downstream may
    depend on the id for reproducibility: artifact digests are content
    digests (:func:`digest_text`) and the aggregate digest of the
    campaign service excludes the campaign id entirely.
    """
    stamp = time.strftime("%Y%m%d-%H%M%S")
    unique = f"p{os.getpid()}c{next(_ID_SEQUENCE)}"
    return f"{prefix}-{stamp}-{unique}-{random.randrange(16**4):04x}"


@dataclass
class ChaosMonkey:
    """Deterministically SIGKILLs random in-flight workers, then
    interrupts the campaign — the failure drill ``--resume`` must
    recover from."""

    mode: str = CHAOS_KILL_WORKER
    #: workers to kill before declaring the campaign interrupted
    kills: int = 1
    #: minimum campaign age before the first kill, seconds (lets some
    #: jobs finish so resume has COMPLETED entries to skip)
    delay_s: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode != CHAOS_KILL_WORKER:
            raise CampaignError(
                f"unknown chaos mode {self.mode!r}; "
                f"known: {CHAOS_KILL_WORKER}")
        self._rng = random.Random(f"chaos:{self.seed}")
        self._killed = 0

    @property
    def exhausted(self) -> bool:
        return self._killed >= self.kills

    def maybe_kill(self, inflight: List[WorkerHandle],
                   campaign_age: float) -> Optional[WorkerHandle]:
        """Pick and SIGKILL a victim worker, or None this tick."""
        if self.exhausted or campaign_age < self.delay_s or not inflight:
            return None
        victim = self._rng.choice(inflight)
        victim.kill()
        self._killed += 1
        return victim


class CampaignRunner:
    """Drives a :class:`RunManifest` to completion with subprocess
    workers, a watchdog, retries, and checkpointing."""

    def __init__(self, manifest: RunManifest, *,
                 max_workers: int = 2,
                 stall_timeout: float = 10.0,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 4.0,
                 poll_interval: float = 0.02,
                 chaos: Optional[ChaosMonkey] = None,
                 vectorize: int = 1,
                 on_event: Optional[Callable[[str, str], None]] = None,
                 on_transition: Optional[Callable[[JobRecord],
                                                  None]] = None):
        if max_workers < 1:
            raise CampaignError("max_workers must be >= 1")
        if vectorize < 1:
            raise CampaignError("vectorize must be >= 1")
        if vectorize > 1 and chaos is not None:
            # Chaos drills model one box dying mid-job; a batch dying
            # is N boxes.  Keep the failure-injection semantics simple:
            # chaos campaigns run solo workers.
            raise CampaignError(
                "vectorize > 1 is incompatible with chaos mode")
        self.manifest = manifest
        self.max_workers = max_workers
        self.vectorize = vectorize
        self.watchdog = Watchdog(stall_timeout=stall_timeout)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll_interval = poll_interval
        self.chaos = chaos
        self._on_event = on_event
        #: structured hook fired after every persisted job state
        #: transition — the shard engine streams these to the campaign
        #: service for live cross-shard progress accounting
        self._on_transition = on_transition
        self._backoff_rng = random.Random(
            f"backoff:{manifest.campaign_id}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:              # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context("spawn")
        self._inflight: Dict[str, WorkerHandle] = {}
        self._batches: Dict[str, BatchHandle] = {}
        self._batch_sequence = itertools.count()

    # ------------------------------------------------------------------
    def _event(self, job_id: str, message: str) -> None:
        if self._on_event is not None:
            self._on_event(job_id, message)

    def _transition(self, record: JobRecord) -> None:
        if self._on_transition is not None:
            self._on_transition(record)

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter, seconds."""
        ceiling = min(self.backoff_cap,
                      self.backoff_base * (2 ** max(0, attempt - 1)))
        return ceiling * (0.5 + 0.5 * self._backoff_rng.random())

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _launch(self, record: JobRecord) -> None:
        attempt = record.attempts + 1
        heartbeat = self._ctx.Value("d", 0.0, lock=False)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(record.spec.to_dict(), attempt, send_conn, heartbeat),
            name=f"repro-job-{record.job_id}",
            daemon=True,
        )
        process.start()
        send_conn.close()
        record.status = JobStatus.RUNNING
        self.manifest.save()
        self._inflight[record.job_id] = WorkerHandle(
            spec=record.spec, attempt=attempt, process=process,
            conn=recv_conn, heartbeat=heartbeat)
        telemetry.count("runner.job.launches")
        self._event(record.job_id, f"attempt {attempt} started "
                                   f"(pid {process.pid})")

    def _retry_or_fail(self, record: JobRecord, status: JobStatus,
                       message: str, *, transient: bool) -> None:
        record.attempts += 1
        record.error = message
        if transient and record.attempts_left() > 0:
            delay = self._backoff(record.attempts)
            record.status = JobStatus.PENDING
            record.eligible_at = time.monotonic() + delay
            telemetry.count("runner.job.retries")
            self._event(record.job_id,
                        f"{status.value.lower()} ({message}); retrying "
                        f"in {delay:.2f}s "
                        f"({record.attempts_left()} attempts left)")
        else:
            record.status = status
            telemetry.count(f"runner.job.{status.value.lower()}")
            self._event(record.job_id, f"{status.value} ({message})")
        self.manifest.save()
        self._transition(record)

    def _complete(self, record: JobRecord, output: str, duration: float,
                  counters: Optional[Dict[str, int]] = None) -> None:
        artifact = Path("artifacts") / f"{record.job_id}.txt"
        atomic_write_text(self.manifest.directory / artifact, output)
        record.attempts += 1
        record.status = JobStatus.COMPLETED
        record.duration_s = duration
        record.digest = digest_text(output)
        record.artifact = str(artifact)
        record.error = ""
        record.counters = dict(counters or {})
        self.manifest.save()
        telemetry.count("runner.job.completed")
        self._event(record.job_id,
                    f"COMPLETED in {duration:.2f}s "
                    f"(digest {record.digest[:12]})")
        self._transition(record)

    def _finalize(self, handle: WorkerHandle) -> None:
        """The worker delivered a message or died; settle the record."""
        record = self.manifest.jobs[handle.job_id]
        message = None
        try:
            if handle.conn.poll(0):
                message = handle.conn.recv()
        except (EOFError, OSError):
            message = None
        handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        del self._inflight[handle.job_id]

        if message is None:
            exitcode = handle.process.exitcode
            crash = WorkerCrashed(
                f"worker for {handle.job_id!r} died without a result "
                f"(exit code {exitcode})", exitcode=exitcode)
            self._retry_or_fail(record, JobStatus.CRASHED, str(crash),
                                transient=True)
            return
        kind = message[0]
        if kind == "ok":
            # Pre-telemetry workers sent 3-tuples; current ones append
            # the counter snapshot.
            _, output, duration = message[:3]
            counters = message[3] if len(message) > 3 else None
            self._complete(record, output, duration, counters)
            return
        _, error, text, transient, _duration = message
        timed_out = isinstance(error, SimulationTimeout) and \
            getattr(error, "deadline", False)
        status = JobStatus.TIMED_OUT if timed_out else JobStatus.FAILED
        self._retry_or_fail(record, status, text, transient=transient)

    def _finalize_closed_pipe(self, handle: WorkerHandle) -> None:
        """The result pipe is gone: no message can ever arrive, so the
        attempt is settled as a crash *now* — even if the process is
        still alive (wedged), waiting out the watchdog budget would buy
        nothing."""
        was_alive = handle.alive()
        handle.kill()
        del self._inflight[handle.job_id]
        record = self.manifest.jobs[handle.job_id]
        detail = ("result pipe closed with the worker still alive"
                  if was_alive else "result pipe closed")
        crash = WorkerCrashed(
            f"worker for {handle.job_id!r} lost its result pipe "
            f"({detail})", exitcode=handle.process.exitcode)
        self._retry_or_fail(record, JobStatus.CRASHED, str(crash),
                            transient=True)

    def _kill_timed_out(self, handle: WorkerHandle,
                        reason: str) -> None:
        handle.kill()
        del self._inflight[handle.job_id]
        record = self.manifest.jobs[handle.job_id]
        telemetry.count("runner.watchdog.kills")
        self._retry_or_fail(record, JobStatus.TIMED_OUT,
                            f"watchdog: {reason}", transient=True)

    # ------------------------------------------------------------------
    # batch workers (--vectorize)
    # ------------------------------------------------------------------
    def _launch_batch(self, records: List[JobRecord]) -> None:
        attempts = {record.job_id: record.attempts + 1
                    for record in records}
        heartbeat = self._ctx.Value("d", 0.0, lock=False)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        batch_id = f"batch-{next(self._batch_sequence)}"
        process = self._ctx.Process(
            target=batch_main,
            args=([record.spec.to_dict() for record in records],
                  [attempts[record.job_id] for record in records],
                  send_conn, heartbeat),
            name=f"repro-{batch_id}",
            daemon=True,
        )
        process.start()
        send_conn.close()
        for record in records:
            record.status = JobStatus.RUNNING
        self.manifest.save()
        self._batches[batch_id] = BatchHandle(
            specs=[record.spec for record in records],
            attempts=attempts, process=process, conn=recv_conn,
            heartbeat=heartbeat)
        telemetry.count("runner.batch.launches")
        telemetry.count("runner.job.launches", len(records))
        self._event(batch_id,
                    f"batch of {len(records)} started (pid "
                    f"{process.pid}): "
                    f"{', '.join(r.job_id for r in records)}")

    def _settle_batch_message(self, handle: BatchHandle,
                              message) -> None:
        job_id = message[0]
        if job_id not in handle.pending:
            return                          # duplicate/unknown: ignore
        handle.pending.discard(job_id)
        record = self.manifest.jobs[job_id]
        if message[1] == "ok":
            _, _, output, duration, counters = message
            self._complete(record, output, duration, counters)
            return
        _, _, error, text, transient, _duration = message
        timed_out = isinstance(error, SimulationTimeout) and \
            getattr(error, "deadline", False)
        status = JobStatus.TIMED_OUT if timed_out else JobStatus.FAILED
        self._retry_or_fail(record, status, text, transient=transient)

    def _drain_batch(self, handle: BatchHandle) -> bool:
        """Settle every message currently in the batch pipe.  Returns
        False when the pipe is gone (no more messages can arrive)."""
        try:
            while handle.conn.poll(0):
                self._settle_batch_message(handle, handle.conn.recv())
        except (EOFError, OSError):
            return False
        return True

    def _retire_batch(self, batch_id: str, handle: BatchHandle,
                      reason: Optional[str]) -> None:
        """Reap a finished/dead/overdue batch worker; everything still
        pending retries (all-unfinished-retry)."""
        handle.kill()
        del self._batches[batch_id]
        if not handle.pending:
            return
        telemetry.count("runner.batch.interrupted")
        for job_id in sorted(handle.pending):
            record = self.manifest.jobs[job_id]
            if reason is not None:
                telemetry.count("runner.watchdog.kills")
                self._retry_or_fail(record, JobStatus.TIMED_OUT,
                                    f"watchdog: {reason}",
                                    transient=True)
            else:
                exitcode = handle.process.exitcode
                crash = WorkerCrashed(
                    f"batch worker for {job_id!r} died without a "
                    f"result (exit code {exitcode})", exitcode=exitcode)
                self._retry_or_fail(record, JobStatus.CRASHED,
                                    str(crash), transient=True)

    def _settle_batches(self, now: float) -> None:
        for batch_id, handle in list(self._batches.items()):
            pipe_open = self._drain_batch(handle)
            if not handle.pending:
                self._retire_batch(batch_id, handle, None)
                continue
            if not pipe_open or not handle.alive():
                # Give a just-exited worker's final messages one more
                # drain before declaring the rest crashed.
                self._drain_batch(handle)
                self._retire_batch(batch_id, handle, None)
                continue
            reason = self.watchdog.overdue_batch(handle, now)
            if reason is not None:
                self._retire_batch(batch_id, handle, reason)

    def _batched_job_ids(self) -> set:
        busy = set()
        for handle in self._batches.values():
            busy.update(spec.job_id for spec in handle.specs)
        return busy

    # ------------------------------------------------------------------
    # chaos interruption
    # ------------------------------------------------------------------
    def _interrupt(self, chaos_victim: WorkerHandle) -> None:
        """A chaos kill interrupts the whole campaign, the way a real
        box dies: the victim's interrupted attempt is accounted through
        :meth:`_retry_or_fail` exactly like an ordinary worker crash
        (attempt counted, retry/backoff policy applied), every other
        in-flight job rolls back to PENDING (their interrupted attempt
        never reported), and the manifest is flagged for resume."""
        victim_record = self.manifest.jobs[chaos_victim.job_id]
        del self._inflight[chaos_victim.job_id]
        telemetry.count("runner.chaos.kills")
        self._event(chaos_victim.job_id, "chaos: worker SIGKILLed")
        self._retry_or_fail(victim_record, JobStatus.CRASHED,
                            "chaos: worker SIGKILLed mid-campaign",
                            transient=True)
        for handle in list(self._inflight.values()):
            handle.kill()
            record = self.manifest.jobs[handle.job_id]
            record.status = JobStatus.PENDING
            record.eligible_at = 0.0
            del self._inflight[handle.job_id]
        self.manifest.interrupted = True
        self.manifest.save()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _launch_pass(self, now: float) -> None:
        """Launch runnable jobs up to the worker limit."""
        if self.vectorize > 1:
            self._launch_batch_pass(now)
            return
        for record in self.manifest.records():
            if len(self._inflight) >= self.max_workers:
                break
            if record.job_id in self._inflight:
                continue
            if record.runnable(now):
                self._launch(record)

    def _launch_batch_pass(self, now: float) -> None:
        """Launch runnable jobs in batches of up to ``vectorize``; a
        batch occupies one worker slot."""
        busy = self._batched_job_ids()
        while len(self._batches) < self.max_workers:
            batch: List[JobRecord] = []
            for record in self.manifest.records():
                if len(batch) >= self.vectorize:
                    break
                if record.job_id in busy:
                    continue
                if record.runnable(now):
                    batch.append(record)
            if not batch:
                return
            self._launch_batch(batch)
            busy.update(record.job_id for record in batch)

    def _settle_pass(self, now: float) -> None:
        """Settle finished, pipe-less, and overdue workers."""
        self._settle_batches(now)
        for handle in list(self._inflight.values()):
            try:
                has_message = handle.conn.poll(0)
            except OSError:
                # The pipe is closed (chaos kill, or the worker's end
                # died) — no result can ever arrive, so finalize as a
                # crash immediately rather than waiting for the
                # process to die or the watchdog budget to expire.
                self._finalize_closed_pipe(handle)
                continue
            if has_message or not handle.alive():
                self._finalize(handle)
                continue
            reason = self.watchdog.overdue(handle, now)
            if reason is not None:
                self._kill_timed_out(handle, reason)

    def run(self) -> RunManifest:
        """Drive every runnable job to a terminal state (or until a
        chaos interruption).  Returns the (saved) manifest."""
        manifest = self.manifest
        manifest.save()
        started = time.monotonic()
        try:
            while True:
                now = time.monotonic()
                self._launch_pass(now)
                self._settle_pass(now)
                # ----- chaos -------------------------------------------
                if self.chaos is not None and not self.chaos.exhausted:
                    victim = self.chaos.maybe_kill(
                        list(self._inflight.values()), now - started)
                    if victim is not None and self.chaos.exhausted:
                        # The final kill takes the whole campaign down,
                        # the way a real box dies mid-run.
                        self._interrupt(victim)
                        return manifest
                    # Earlier kills are ordinary worker crashes: the
                    # next settle pass reaps them as CRASHED and the
                    # retry policy takes over.
                # ----- done? -------------------------------------------
                if not self._inflight and not self._batches:
                    waiting = [r for r in manifest.records()
                               if r.status is JobStatus.PENDING]
                    if not waiting:
                        break
                    wake = min(r.eligible_at for r in waiting)
                    time.sleep(max(self.poll_interval,
                                   min(wake - time.monotonic(),
                                       self.backoff_cap)))
                    continue
                time.sleep(self.poll_interval)
        finally:
            for handle in list(self._inflight.values()):
                handle.kill()
            self._inflight.clear()
            for batch in list(self._batches.values()):
                batch.kill()
            self._batches.clear()
            manifest.save()
        return manifest


# ----------------------------------------------------------------------
# convenience entry point (CLI + tests)
# ----------------------------------------------------------------------
def run_campaign(specs: List[JobSpec], runs_dir, *,
                 campaign_id: Optional[str] = None,
                 seed: Optional[int] = None,
                 resume: bool = False,
                 max_workers: int = 2,
                 stall_timeout: float = 10.0,
                 chaos: Optional[ChaosMonkey] = None,
                 vectorize: int = 1,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 4.0,
                 on_event: Optional[Callable[[str, str], None]] = None
                 ) -> RunManifest:
    """Create (or resume) a campaign and run it to completion.

    On ``resume=True`` the manifest is loaded from
    ``runs_dir/campaign_id`` and ``specs`` is ignored — the campaign
    re-runs exactly what it recorded, skipping COMPLETED jobs.
    ``vectorize > 1`` batches that many jobs per worker process
    (amortizing fork/import/warm-up); results, artifacts and digests
    are byte-identical to solo workers.
    """
    runs_dir = Path(runs_dir)
    if resume:
        if campaign_id is None:
            raise CampaignError("resume requires a campaign id")
        manifest = RunManifest.load(runs_dir, campaign_id)
        manifest.reset_for_resume()
    else:
        campaign_id = campaign_id or new_campaign_id()
        if (runs_dir / campaign_id / MANIFEST_NAME).exists():
            raise CampaignError(
                f"campaign {campaign_id!r} already exists under "
                f"{runs_dir}; use resume")
        manifest = RunManifest.create(
            campaign_id, runs_dir, specs=specs, seed=seed,
            created=time.strftime("%Y-%m-%dT%H:%M:%S"))
    runner = CampaignRunner(
        manifest, max_workers=max_workers, stall_timeout=stall_timeout,
        backoff_base=backoff_base, backoff_cap=backoff_cap,
        chaos=chaos, vectorize=vectorize, on_event=on_event)
    return runner.run()
