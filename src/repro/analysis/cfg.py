"""Control-flow-graph recovery over assembled binaries.

The static half of the attacker's offline phase: given only the bytes
of a victim (plus its entry point), rebuild what the front end will
see — instructions, basic blocks, and the edges a prediction can
follow.  Two recovery modes mirror classic binary analysis:

* :func:`linear_sweep` — decode every segment front to back, skipping
  undecodable bytes one at a time.  This over-approximates what the
  fetch-ahead drain can reach (it decodes past stops into code that
  never retires), so the differential validator uses it for BTB
  insertion *containment*.
* :func:`recover_cfg` — recursive descent from the entry point(s),
  following calls, jumps and both arms of conditionals.  This is the
  precise, reachable graph used for taint analysis and edge
  prediction.

Indirect transfers (``jmpr``/``callr``/``ret`` with unknown callers)
cannot be resolved statically; their source instructions are recorded
in :attr:`CFG.unresolved` and their successor sets are ⊤ (``None`` in
:func:`CFG.successors`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from ..errors import DecodeError
from ..isa.encoding import decode
from ..isa.instructions import Instruction, Kind


class EdgeKind(enum.Enum):
    """Why control can flow from one instruction to another."""

    FALLTHROUGH = "fallthrough"
    TAKEN = "taken"              # taken direct/conditional jump
    CALL = "call"                # call to a function entry
    RETURN = "return"            # ret back to a recorded return site


@dataclass(frozen=True)
class Edge:
    """One control-flow edge between instruction addresses."""

    src: int
    dst: int
    kind: EdgeKind


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` is the address of the first instruction, ``end`` the
    address one past the last instruction's final byte.
    """

    start: int
    end: int
    instructions: List[int] = field(default_factory=list)
    function: Optional[str] = None

    @property
    def terminator(self) -> int:
        """Address of the block's last instruction."""
        return self.instructions[-1]


class CodeImage:
    """Read-only view of an assembled binary's code bytes."""

    def __init__(self, segments: Sequence[Tuple[int, bytes]]):
        self._segments = sorted(
            ((base, bytes(blob)) for base, blob in segments),
            key=lambda pair: pair[0])

    @classmethod
    def from_program(cls, program) -> "CodeImage":
        """Build from an :class:`repro.isa.assembler.AssembledProgram`."""
        return cls(program.segments)

    @property
    def segments(self) -> List[Tuple[int, bytes]]:
        return list(self._segments)

    def segment_of(self, pc: int) -> Optional[Tuple[int, bytes]]:
        for base, blob in self._segments:
            if base <= pc < base + len(blob):
                return base, blob
        return None

    def contains(self, pc: int) -> bool:
        return self.segment_of(pc) is not None

    def decode(self, pc: int) -> Tuple[Instruction, int]:
        """Decode the instruction at ``pc``.

        Raises :class:`DecodeError` when ``pc`` is outside every
        segment or the bytes do not decode.
        """
        segment = self.segment_of(pc)
        if segment is None:
            raise DecodeError(f"address {pc:#x} outside the code image")
        base, blob = segment
        return decode(blob, pc - base)


def linear_sweep(image: CodeImage) -> Dict[int, Instruction]:
    """Decode every segment front to back (skip junk bytes one at a
    time), returning ``pc -> instruction`` for everything decodable."""
    instrs: Dict[int, Instruction] = {}
    for base, blob in image.segments:
        offset = 0
        while offset < len(blob):
            try:
                instruction, length = decode(blob, offset)
            except DecodeError:
                offset += 1
                continue
            instrs[base + offset] = instruction
            offset += length
    return instrs


@dataclass
class CFG:
    """The recovered control-flow graph."""

    image: CodeImage
    entry: int
    #: reachable instructions (recursive descent)
    instrs: Dict[int, Instruction]
    #: instruction-level edges
    edges: List[Edge]
    #: block start -> block
    blocks: Dict[int, BasicBlock]
    #: function entry pc -> set of its ``ret`` instruction pcs
    rets: Dict[int, Set[int]]
    #: function entry pc -> recorded return sites (callers' pc+len)
    return_sites: Dict[int, Set[int]]
    #: function entry pc of every reachable instruction
    function_entry_of: Dict[int, int]
    #: pcs of indirect transfers (and rets with unknown callers):
    #: successors are statically ⊤
    unresolved: Set[int]
    #: function entry pc -> name (when a function map was provided)
    function_names: Dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def function_of(self, pc: int) -> Optional[str]:
        entry = self.function_entry_of.get(pc)
        if entry is None:
            return None
        return self.function_names.get(entry, f"sub_{entry:#x}")

    def control_pcs(self) -> List[int]:
        """Reachable control-transfer instruction addresses."""
        return sorted(pc for pc, inst in self.instrs.items()
                      if inst.is_control)

    def successors(self, pc: int) -> Optional[FrozenSet[int]]:
        """Statically predicted successor set of the instruction at
        ``pc`` — ``None`` means ⊤ (an unresolved indirect)."""
        return self._succ.get(pc)

    def successor_map(self) -> Dict[int, Optional[FrozenSet[int]]]:
        """``pc -> successors`` for every reachable instruction."""
        return dict(self._succ)

    # filled by recover_cfg
    _succ: Dict[int, Optional[FrozenSet[int]]] = field(
        default_factory=dict)


def recover_cfg(image: CodeImage, entry: int, *,
                extra_entries: Iterable[int] = (),
                function_names: Optional[Dict[int, str]] = None) -> CFG:
    """Recursive-descent CFG recovery from ``entry``.

    ``extra_entries`` are additional function entry points (code called
    indirectly or driven by a harness).  ``function_names`` maps
    function entry pcs to display names (e.g. from a
    :class:`repro.lang.codegen.CompiledModule`).
    """
    instrs: Dict[int, Instruction] = {}
    fn_of: Dict[int, int] = {}
    rets: Dict[int, Set[int]] = {}
    return_sites: Dict[int, Set[int]] = {}
    unresolved: Set[int] = set()
    #: (successor pc, edge kind) per instruction, before RETURN edges
    raw_succ: Dict[int, List[Tuple[int, EdgeKind]]] = {}

    entries: List[int] = [entry] + [pc for pc in extra_entries
                                    if pc != entry]
    #: functions entered without an observed call site return to ⊤
    harness_entries: Set[int] = set(entries)
    worklist: List[Tuple[int, int]] = [(pc, pc) for pc in entries]
    for pc in entries:
        rets.setdefault(pc, set())
        return_sites.setdefault(pc, set())

    def enqueue(pc: int, fn_entry: int) -> None:
        if pc not in instrs:
            worklist.append((pc, fn_entry))

    while worklist:
        pc, fn_entry = worklist.pop()
        if pc in instrs:
            continue
        try:
            instruction, length = image.decode(pc)
        except DecodeError:
            continue        # fell off the code (or into data): stop path
        instrs[pc] = instruction
        fn_of[pc] = fn_entry
        succ: List[Tuple[int, EdgeKind]] = []
        kind = instruction.kind
        if kind is Kind.SEQUENTIAL or kind is Kind.SYSCALL:
            succ.append((pc + length, EdgeKind.FALLTHROUGH))
            enqueue(pc + length, fn_entry)
        elif kind is Kind.DIRECT_JUMP:
            target = pc + length + instruction.operands[0]
            succ.append((target, EdgeKind.TAKEN))
            enqueue(target, fn_entry)
        elif kind is Kind.COND_JUMP:
            target = pc + length + instruction.operands[0]
            succ.append((pc + length, EdgeKind.FALLTHROUGH))
            succ.append((target, EdgeKind.TAKEN))
            enqueue(pc + length, fn_entry)
            enqueue(target, fn_entry)
        elif kind is Kind.CALL:
            target = pc + length + instruction.operands[0]
            succ.append((target, EdgeKind.CALL))
            rets.setdefault(target, set())
            return_sites.setdefault(target, set()).add(pc + length)
            enqueue(target, target)
            enqueue(pc + length, fn_entry)     # the return site
        elif kind is Kind.RET:
            rets.setdefault(fn_entry, set()).add(pc)
        elif kind in (Kind.INDIRECT_JUMP, Kind.INDIRECT_CALL):
            unresolved.add(pc)
            if kind is Kind.INDIRECT_CALL:
                # the unknown callee eventually returns here
                succ.append((pc + length, EdgeKind.FALLTHROUGH))
                enqueue(pc + length, fn_entry)
        elif kind is Kind.HALT:
            pass                               # sink
        raw_succ[pc] = succ

    # ------------------------------------------------------------------
    # RETURN edges: every ret of f goes to every recorded return site
    # of f; a function reachable without a call site returns to ⊤.
    # ------------------------------------------------------------------
    for fn_entry, ret_pcs in rets.items():
        sites = return_sites.get(fn_entry, set())
        for ret_pc in sorted(ret_pcs):
            if fn_entry in harness_entries and not sites:
                unresolved.add(ret_pc)
                continue
            for site in sorted(sites):
                raw_succ[ret_pc].append((site, EdgeKind.RETURN))

    edges = [Edge(src, dst, kind)
             for src in sorted(raw_succ)
             for dst, kind in raw_succ[src]]

    # ------------------------------------------------------------------
    # basic blocks: leaders are entries, edge destinations, and the
    # instruction after any control transfer.
    # ------------------------------------------------------------------
    leaders: Set[int] = set(entries) & set(instrs)
    for edge in edges:
        if edge.dst in instrs:
            leaders.add(edge.dst)
    for pc, instruction in instrs.items():
        if instruction.is_control:
            after = pc + instruction.length
            if after in instrs:
                leaders.add(after)

    blocks: Dict[int, BasicBlock] = {}
    names = dict(function_names or {})
    ordered = sorted(instrs)
    index = {pc: i for i, pc in enumerate(ordered)}
    for leader in sorted(leaders):
        block = BasicBlock(start=leader, end=leader)
        pc = leader
        while True:
            instruction = instrs[pc]
            block.instructions.append(pc)
            block.end = pc + instruction.length
            nxt = pc + instruction.length
            if instruction.is_control or nxt in leaders:
                break
            if nxt not in instrs or index.get(nxt, -1) != index[pc] + 1:
                break
            pc = nxt
        entry_pc = fn_of.get(leader)
        if entry_pc is not None:
            block.function = names.get(entry_pc, f"sub_{entry_pc:#x}")
        blocks[leader] = block

    cfg = CFG(image=image, entry=entry, instrs=instrs, edges=edges,
              blocks=blocks, rets=rets, return_sites=return_sites,
              function_entry_of=fn_of, unresolved=unresolved,
              function_names=names)
    succ_map: Dict[int, Optional[FrozenSet[int]]] = {}
    for pc in instrs:
        if pc in unresolved:
            succ_map[pc] = None
        else:
            succ_map[pc] = frozenset(dst for dst, _ in raw_succ[pc])
    cfg._succ = succ_map
    return cfg


def recover_module_cfg(compiled, *,
                       extra_entries: Iterable[int] = ()) -> CFG:
    """CFG of a :class:`repro.lang.codegen.CompiledModule`, named after
    its function table and rooted at the ``_start`` stub."""
    image = CodeImage.from_program(compiled.program)
    names = {info.entry: name
             for name, info in compiled.functions.items()}
    entry = compiled.start
    if entry is None:
        raise ValueError("module was compiled without a start stub")
    return recover_cfg(image, entry, extra_entries=extra_entries,
                       function_names=names)


# ----------------------------------------------------------------------
# block-graph dataflow utilities (control-dependence building blocks)
# ----------------------------------------------------------------------
def reachable_from(successors: Dict[int, Set[int]],
                   starts: Iterable[int]) -> Set[int]:
    """Transitive closure over a block successor graph, including the
    start nodes themselves."""
    seen: Set[int] = set()
    stack = list(starts)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successors.get(node, ()))
    return seen


def postdominator_sets(successors: Dict[int, Set[int]]
                       ) -> Dict[int, Set[int]]:
    """``node -> set of its postdominators`` (including itself) by the
    standard iterative dataflow: a node with no successors
    postdominates only itself; otherwise
    ``pdom(n) = {n} ∪ ⋂ pdom(succ)``.  Nodes that cannot reach an
    exit keep the full set (vacuous intersection over an infinite
    path), which is the conservative answer."""
    nodes = sorted(successors)
    everything = set(nodes)
    pdom: Dict[int, Set[int]] = {}
    for node in nodes:
        pdom[node] = ({node} if not successors[node]
                      else set(everything))
    changed = True
    while changed:
        changed = False
        for node in reversed(nodes):
            succ = successors[node]
            if not succ:
                continue
            merged: Optional[Set[int]] = None
            for s in succ:
                merged = (set(pdom[s]) if merged is None
                          else merged & pdom[s])
            merged = (merged or set()) | {node}
            if merged != pdom[node]:
                pdom[node] = merged
                changed = True
    return pdom


def nodes_on_cycles(successors: Dict[int, Set[int]]) -> Set[int]:
    """Nodes that can reach themselves along at least one edge."""
    return {node for node in successors
            if node in reachable_from(successors,
                                      successors.get(node, ()))}
