"""The ``repro certify`` engine: prove, refute, and repair leaks.

For every victim with a :class:`repro.victims.library.CertifySpec`
this module:

1. **explores** the victim symbolically over its declared input
   domain (:mod:`.executor`), collecting per-site direction/value
   traces for every feasible path;
2. **classifies** each function: ``PROVEN_LEAKY`` when two feasible
   paths disagree on some branch site's direction trace (the
   divergence predicate is satisfiable — both models are in hand),
   ``PROVEN_SAFE`` when exploration was exhaustive and every trace
   agrees, ``UNDECIDED`` when a budget ran out (sound degradation);
3. **replays** both witnesses of every proven leak on the
   instrumented core: the ordered BTB event streams must diverge, or
   the verdict is reported as a replay failure;
4. **repairs**: victims with proven leaks are re-built through the
   constant-time rewriter (:mod:`repro.lang.ctrewrite`), re-certified
   symbolically, and validated dynamically — the original witnesses
   must now produce bit-identical streams, and an exhaustive sweep of
   the (tiny) certified domain must preserve every result array.

Verdicts are **BTB-scoped**: a data-address difference (e.g. the
pointer-select the 2.16 rewrite introduces) never reaches the BTB and
is reported separately as a cache-channel residual, not as a leak.

The report is byte-stable (sorted rows, no timestamps); ``repro
certify --golden`` diffs it against a committed, enveloped golden
copy exactly like ``repro lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..report import ascii_table
from .executor import ExploreBudget, Exploration, explore_victim
from .witness import (inputs_for_model, replay_btb_stream,
                      replay_result_arrays)

__all__ = ["PROVEN_LEAKY", "PROVEN_SAFE", "UNDECIDED",
           "CertifyBudget", "FunctionVerdict", "VictimCertification",
           "RewriteValidation", "CertifyReport", "certify_corpus",
           "certify_victim", "rewrite_victim", "run_certify",
           "render_certify_report"]

PROVEN_LEAKY = "PROVEN_LEAKY"
PROVEN_SAFE = "PROVEN_SAFE"
UNDECIDED = "UNDECIDED"


@dataclass(frozen=True)
class CertifyBudget:
    """Exploration bounds for one certification run.  The rewrite
    pass re-certifies masked straight-line code whose expression
    graphs are larger, hence the separate gate ceiling."""

    max_paths: int = 512
    max_steps: int = 600_000
    max_gates: int = 4_000_000
    rewrite_max_gates: int = 16_000_000
    solver_decisions: int = 100_000
    enum_limit: int = 8

    def explore(self, *, rewritten: bool = False) -> ExploreBudget:
        return ExploreBudget(
            max_paths=self.max_paths,
            max_steps=self.max_steps,
            max_gates=(self.rewrite_max_gates if rewritten
                       else self.max_gates),
            solver_decisions=self.solver_decisions,
            enum_limit=self.enum_limit)


@dataclass
class FunctionVerdict:
    """Certified classification of one compiled function."""

    function: str
    verdict: str
    expected: Optional[str]
    branch_sites: int
    leaky_sites: int
    #: sites whose streams differ only in trip count — inherited from
    #: a secret caller, not a secret direction of this function
    inherited_sites: int = 0
    #: lowest divergent branch pc (leaky verdicts only)
    divergent_pc: Optional[int] = None
    #: two concrete input maps proving the divergence
    witness_a: Optional[Dict[str, int]] = None
    witness_b: Optional[Dict[str, int]] = None
    #: did the replayed BTB streams of the two witnesses differ?
    streams_diverged: Optional[bool] = None

    @property
    def matches_expected(self) -> bool:
        return self.expected is None or self.verdict == self.expected


@dataclass
class VictimCertification:
    """Everything one victim's certification produced."""

    name: str
    victim: object
    exploration: Exploration
    verdicts: List[FunctionVerdict] = field(default_factory=list)
    #: enumerated data-address sites (cache channel, outside the BTB
    #: model): function -> site count
    access_residuals: Dict[str, int] = field(default_factory=dict)

    @property
    def leaky(self) -> List[FunctionVerdict]:
        return [v for v in self.verdicts if v.verdict == PROVEN_LEAKY]

    @property
    def undecided(self) -> List[FunctionVerdict]:
        return [v for v in self.verdicts if v.verdict == UNDECIDED]

    @property
    def new_leaks(self) -> List[FunctionVerdict]:
        allowed = set(self.victim.leak_allowlist)
        return [v for v in self.leaky if v.function not in allowed]

    @property
    def mismatches(self) -> List[FunctionVerdict]:
        return [v for v in self.verdicts if not v.matches_expected]


@dataclass
class RewriteValidation:
    """Symbolic + dynamic validation of one victim's CT rewrite."""

    name: str
    verdict: str                       # worst re-certified verdict
    #: per original leaky function: replayed streams bit-identical?
    streams_identical: bool
    #: result arrays preserved on every input in the domain
    functional_ok: bool
    domain_size: int
    residual_access_sites: int

    @property
    def ok(self) -> bool:
        return (self.verdict == PROVEN_SAFE and self.streams_identical
                and self.functional_ok)


@dataclass
class CertifyReport:
    certifications: List[VictimCertification] = field(
        default_factory=list)
    rewrites: List[RewriteValidation] = field(default_factory=list)

    @property
    def new_leaks(self) -> List[Tuple[str, FunctionVerdict]]:
        return [(c.name, v) for c in self.certifications
                for v in c.new_leaks]

    @property
    def failures(self) -> List[str]:
        """Everything that makes the run FAIL (exit 2)."""
        problems: List[str] = []
        for cert in self.certifications:
            for verdict in cert.new_leaks:
                problems.append(
                    f"{cert.name}: NEW leak in {verdict.function}")
            for verdict in cert.mismatches:
                problems.append(
                    f"{cert.name}: {verdict.function} certified "
                    f"{verdict.verdict}, expected {verdict.expected}")
            for verdict in cert.leaky:
                if verdict.streams_diverged is False:
                    problems.append(
                        f"{cert.name}: witnesses for "
                        f"{verdict.function} did not diverge on replay")
        for rewrite in self.rewrites:
            if not rewrite.ok:
                problems.append(f"{rewrite.name}: constant-time "
                                f"rewrite failed validation")
        return problems

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        return render_certify_report(self)


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def _site_traces(exploration: Exploration, pc: int
                 ) -> List[Tuple[int, Tuple[int, ...]]]:
    """(path index, direction trace) per completed path; a path that
    never reached the site contributes the empty trace."""
    return [(path.index, path.branch_traces.get(pc, ()))
            for path in exploration.paths]


def _primary_divergence(first: Tuple[int, ...],
                        second: Tuple[int, ...]) -> bool:
    """A site leaks *primarily* when two paths disagree within their
    common prefix — the branch itself turned on the secret.  When one
    trace merely extends the other, every executed direction agreed
    and only the trip count differed: that divergence is inherited
    from whichever secret branch controls the caller, which is
    flagged at its own site."""
    return any(a != b for a, b in zip(first, second))


def _divergent_pair(exploration: Exploration, pc: int
                    ) -> Optional[Tuple[int, int]]:
    """First two path indices with a primary disagreement at ``pc``
    (deterministic: path order is DFS order, itself deterministic)."""
    traces = _site_traces(exploration, pc)
    for i in range(len(traces)):
        for j in range(i + 1, len(traces)):
            if _primary_divergence(traces[i][1], traces[j][1]):
                return traces[i][0], traces[j][0]
    return None


def _inherited_only(exploration: Exploration, pc: int) -> bool:
    """True when the site's traces differ across paths, but only by
    extension (secret trip count, never secret direction)."""
    traces = [trace for _, trace in _site_traces(exploration, pc)]
    return any(traces[i] != traces[j]
               for i in range(len(traces))
               for j in range(i + 1, len(traces)))


def certify_victim(name: str, victim, *,
                   budget: Optional[CertifyBudget] = None,
                   rewritten: bool = False) -> VictimCertification:
    """Symbolically certify one victim over its declared domain."""
    spec = victim.certify
    if spec is None:
        raise ValueError(f"victim {name!r} has no CertifySpec")
    budget = budget if budget is not None else CertifyBudget()
    exploration = explore_victim(
        victim, spec.domains, spec.template_inputs(),
        budget=budget.explore(rewritten=rewritten))
    cert = VictimCertification(name=name, victim=victim,
                               exploration=exploration)

    compiled = victim.compiled
    per_function: Dict[str, List[int]] = {}
    for pc in exploration.branch_sites():
        function = compiled.function_of(pc) or f"@{pc:#x}"
        per_function.setdefault(function, []).append(pc)
    for pc in exploration.access_sites():
        function = compiled.function_of(pc) or f"@{pc:#x}"
        cert.access_residuals[function] = (
            cert.access_residuals.get(function, 0) + 1)

    complete = exploration.complete
    named = set(per_function)
    # every compiled function gets a verdict; unexecuted ones are
    # vacuously safe over the domain when exploration was exhaustive
    for function in sorted(set(compiled.functions) | named):
        sites = per_function.get(function, [])
        divergent = [(pc, _divergent_pair(exploration, pc))
                     for pc in sites]
        leaky = [(pc, pair) for pc, pair in divergent
                 if pair is not None]
        inherited = sum(
            1 for pc, pair in divergent
            if pair is None and _inherited_only(exploration, pc))
        if leaky:
            pc, pair = leaky[0]
            first, second = pair
            model_a = exploration.paths[first].model
            model_b = exploration.paths[second].model
            verdict = FunctionVerdict(
                function=function, verdict=PROVEN_LEAKY,
                expected=spec.expected_verdict(function),
                branch_sites=len(sites), leaky_sites=len(leaky),
                inherited_sites=inherited, divergent_pc=pc,
                witness_a=inputs_for_model(
                    spec.domains, model_a, spec.template_inputs()),
                witness_b=inputs_for_model(
                    spec.domains, model_b, spec.template_inputs()))
        else:
            verdict = FunctionVerdict(
                function=function,
                verdict=PROVEN_SAFE if complete else UNDECIDED,
                expected=spec.expected_verdict(function),
                branch_sites=len(sites), leaky_sites=0,
                inherited_sites=inherited)
        cert.verdicts.append(verdict)
    return cert


# ----------------------------------------------------------------------
# the constant-time repair loop
# ----------------------------------------------------------------------
def rewrite_victim(victim):
    """Re-build ``victim`` through the constant-time rewriter."""
    from ...lang import Compiler, parse_module
    from ...lang.ctrewrite import rewrite_module

    if victim.source is None or victim.certify is None:
        raise ValueError("victim carries no source/CertifySpec; "
                         "cannot rewrite")
    module = parse_module(victim.source)
    rewritten = rewrite_module(module,
                               bound=victim.certify.ct_loop_bound)
    compiled = Compiler(victim.compiled.options).compile(
        rewritten, start=victim.main)
    clone = type(victim)(
        compiled, victim.layout, victim.nlimbs,
        secret_function=victim.secret_function,
        fingerprint_function=victim.fingerprint_function,
        then_arm_is_truth=victim.then_arm_is_truth,
        main=victim.main,
        secret_inputs=victim.secret_inputs,
        leak_allowlist=(),
        options=victim.compiled.options,
        certify=replace(victim.certify,
                        expected=(("*", PROVEN_SAFE),)))
    return clone


def _domain_inputs(spec) -> List[Dict[str, int]]:
    """Every concrete input map in the certified domain (exhaustive —
    the domains are deliberately tiny)."""
    combos: List[Dict[str, int]] = [spec.template_inputs()]
    for domain in spec.domains:
        expanded: List[Dict[str, int]] = []
        for base in combos:
            for value in range(1 << domain.bits):
                inputs = dict(base)
                inputs[domain.array] = (domain.forced_or
                                        | (value << domain.shift))
                expanded.append(inputs)
        combos = expanded
    return combos


def _validate_rewrite(name: str, victim, rewritten,
                      cert: VictimCertification,
                      recert: VictimCertification
                      ) -> RewriteValidation:
    worst = PROVEN_SAFE
    for verdict in recert.verdicts:
        if verdict.verdict == PROVEN_LEAKY:
            worst = PROVEN_LEAKY
            break
        if verdict.verdict == UNDECIDED:
            worst = UNDECIDED
    streams_identical = True
    for verdict in cert.leaky:
        if verdict.witness_a is None or verdict.witness_b is None:
            continue
        stream_a = replay_btb_stream(rewritten, verdict.witness_a)
        stream_b = replay_btb_stream(rewritten, verdict.witness_b)
        if stream_a != stream_b:
            streams_identical = False
    domain = _domain_inputs(victim.certify)
    functional_ok = True
    for inputs in domain:
        if (replay_result_arrays(victim, inputs)
                != replay_result_arrays(rewritten, inputs)):
            functional_ok = False
            break
    return RewriteValidation(
        name=name, verdict=worst,
        streams_identical=streams_identical,
        functional_ok=functional_ok,
        domain_size=len(domain),
        residual_access_sites=sum(
            recert.access_residuals.values()))


# ----------------------------------------------------------------------
# corpus driver
# ----------------------------------------------------------------------
def certify_corpus() -> List[Tuple[str, object]]:
    """Same victims, same order as ``repro lint``."""
    from ..lint import lint_corpus
    return lint_corpus()


def run_certify(corpus: Optional[List[Tuple[str, object]]] = None, *,
                budget: Optional[CertifyBudget] = None,
                replay: bool = True,
                rewrite: bool = True) -> CertifyReport:
    """Certify the corpus; replay witnesses; repair + re-validate."""
    corpus = corpus if corpus is not None else certify_corpus()
    budget = budget if budget is not None else CertifyBudget()
    report = CertifyReport()
    for name, victim in corpus:
        cert = certify_victim(name, victim, budget=budget)
        if replay:
            for verdict in cert.leaky:
                stream_a = replay_btb_stream(victim, verdict.witness_a)
                stream_b = replay_btb_stream(victim, verdict.witness_b)
                verdict.streams_diverged = stream_a != stream_b
        report.certifications.append(cert)
        if rewrite and cert.leaky:
            rewritten = rewrite_victim(victim)
            recert = certify_victim(name, rewritten, budget=budget,
                                    rewritten=True)
            report.rewrites.append(_validate_rewrite(
                name, victim, rewritten, cert, recert))
    return report


# ----------------------------------------------------------------------
# rendering (byte-stable)
# ----------------------------------------------------------------------
def _render_inputs(inputs: Optional[Dict[str, int]],
                   spec) -> str:
    if inputs is None:
        return "-"
    names = [domain.array for domain in spec.domains]
    return ",".join(f"{name}={inputs.get(name, 0)}" for name in names)


def render_certify_report(report: CertifyReport) -> str:
    lines: List[str] = []
    lines.append("repro certify — symbolic leakage certification")
    lines.append("==============================================")
    lines.append("")

    rows = []
    for cert in report.certifications:
        exploration = cert.exploration
        stats = exploration.stats
        rows.append([
            cert.name,
            str(len(exploration.paths)),
            str(exploration.forks),
            str(exploration.steps),
            f"{stats.calls}/{stats.sat}/{stats.unsat}",
            str(len(exploration.branch_sites())),
            str(len(exploration.access_sites())),
            "yes" if exploration.complete else "NO",
        ])
    lines.append(ascii_table(
        ["victim", "paths", "forks", "steps", "solver c/s/u",
         "branch sites", "access sites", "exhaustive"], rows))
    lines.append("")

    lines.append("function verdicts")
    lines.append("-----------------")
    verdict_rows = []
    for cert in report.certifications:
        spec = cert.victim.certify
        for verdict in cert.verdicts:
            if verdict.branch_sites == 0 \
                    and verdict.verdict == PROVEN_SAFE \
                    and verdict.matches_expected:
                continue               # keep the table to the action
            verdict_rows.append([
                cert.name,
                verdict.function,
                verdict.verdict,
                verdict.expected or "-",
                f"{verdict.leaky_sites}/{verdict.branch_sites}",
                str(verdict.inherited_sites),
                (f"{verdict.divergent_pc:#x}"
                 if verdict.divergent_pc is not None else "-"),
                "ok" if verdict.matches_expected else "MISMATCH",
            ])
    lines.append(ascii_table(
        ["victim", "function", "verdict", "expected",
         "leaky/sites", "inherited", "divergent pc", "status"],
        verdict_rows))
    lines.append("")

    witness_rows = []
    for cert in report.certifications:
        spec = cert.victim.certify
        for verdict in cert.leaky:
            if verdict.streams_diverged is None:
                outcome = "not replayed"
            elif verdict.streams_diverged:
                outcome = "diverge"
            else:
                outcome = "DID NOT DIVERGE"
            witness_rows.append([
                cert.name,
                verdict.function,
                _render_inputs(verdict.witness_a, spec),
                _render_inputs(verdict.witness_b, spec),
                outcome,
            ])
    if witness_rows:
        lines.append("leak witnesses (replayed BTB event streams)")
        lines.append("-------------------------------------------")
        lines.append(ascii_table(
            ["victim", "function", "witness A", "witness B",
             "streams"], witness_rows))
        lines.append("")

    if report.rewrites:
        lines.append("constant-time rewrite")
        lines.append("---------------------")
        rewrite_rows = []
        for rewrite in report.rewrites:
            rewrite_rows.append([
                rewrite.name,
                rewrite.verdict,
                ("bit-identical" if rewrite.streams_identical
                 else "DIVERGED"),
                (f"preserved ({rewrite.domain_size}/"
                 f"{rewrite.domain_size})"
                 if rewrite.functional_ok else "BROKEN"),
                str(rewrite.residual_access_sites),
            ])
        lines.append(ascii_table(
            ["victim", "re-verdict", "witness streams", "results",
             "access residuals"], rewrite_rows))
        lines.append("")

    residuals = [(cert.name, function, count)
                 for cert in report.certifications
                 for function, count in sorted(
                     cert.access_residuals.items())]
    if residuals:
        lines.append("access-channel residuals (outside the BTB "
                     "model: data addresses, not branch targets)")
        for name, function, count in residuals:
            lines.append(f"  {name}: {function} — {count} site(s)")
        lines.append("")

    failures = report.failures
    verdict = ("OK — every verdict proven and every rewrite validated"
               if not failures else
               f"FAIL — {len(failures)} problem(s): "
               + "; ".join(failures))
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines) + "\n"
