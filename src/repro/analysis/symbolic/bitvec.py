"""Hash-consed Boolean DAGs and 64-bit bit-vector operations.

A *bit* is either a Python int ``0``/``1`` (concrete) or a
:class:`Node` (symbolic).  A *word* is either a Python int (fully
concrete, the fast path) or a 64-tuple of bits, LSB first.

Every arithmetic helper mirrors the flag math of
:mod:`repro.cpu.semantics` exactly (same ``_add``/``_sub``/``_logic``
formulas, bit-blasted), so a path predicate built here and a concrete
interpreter run agree bit-for-bit — the property tests in
``tests/test_symbolic_bitvec.py`` enforce this on random vectors.

Construction-time folding (constants, idempotence, complements,
double negation) plus hash-consing keeps DAGs compact: values whose
high bits collapse to a shared borrow/sign node cost O(1) per level,
which is what makes re-certifying arithmetic-select rewrites
tractable.  :class:`BitCtx` owns the intern table and a gate budget;
exceeding it raises :class:`GateBudgetExceeded`, which the executor
reports as a sound ``UNDECIDED``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ...isa.registers import MASK64, SIGN64, to_signed

__all__ = ["BitCtx", "Node", "GateBudgetExceeded", "MASK64", "Bit", "Word"]


class GateBudgetExceeded(Exception):
    """The symbolic expression graph outgrew the configured budget."""


class Node:
    """One interned Boolean gate: ``var``/``not``/``and``/``or``/``xor``."""

    __slots__ = ("op", "a", "b", "uid")

    def __init__(self, op: str, a, b, uid: int):
        self.op = op
        self.a = a        # var: name (str); not: Node; and/or/xor: Node
        self.b = b        # and/or/xor: Node; else None
        self.uid = uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "var":
            return f"v({self.a})"
        return f"{self.op}#{self.uid}"


Bit = Union[int, Node]
Word = Union[int, Tuple[Bit, ...]]

_WIDTH = 64


class BitCtx:
    """Owner of the intern table, the variable registry and the gate
    budget for one certification run."""

    def __init__(self, gate_budget: Optional[int] = None):
        self._interned: Dict[Tuple, Node] = {}
        self._vars: Dict[str, Node] = {}
        self._uid = 0
        self.gates = 0
        self.gate_budget = gate_budget

    # -- node construction --------------------------------------------
    def _make(self, key: Tuple, op: str, a, b) -> Node:
        node = self._interned.get(key)
        if node is None:
            self._uid += 1
            self.gates += 1
            if self.gate_budget is not None and self.gates > self.gate_budget:
                raise GateBudgetExceeded(
                    f"symbolic graph exceeded {self.gate_budget} gates")
            node = Node(op, a, b, self._uid)
            self._interned[key] = node
        return node

    def var(self, name: str) -> Node:
        node = self._vars.get(name)
        if node is None:
            node = self._make(("var", name), "var", name, None)
            self._vars[name] = node
        return node

    def var_names(self) -> List[str]:
        return sorted(self._vars)

    def not_(self, a: Bit) -> Bit:
        if isinstance(a, int):
            return a ^ 1
        if a.op == "not":
            return a.a
        return self._make(("not", a.uid), "not", a, None)

    @staticmethod
    def _complement(a: Node, b: Node) -> bool:
        return ((a.op == "not" and a.a is b)
                or (b.op == "not" and b.a is a))

    def and_(self, a: Bit, b: Bit) -> Bit:
        if isinstance(a, int):
            return b if a else 0
        if isinstance(b, int):
            return a if b else 0
        if a is b:
            return a
        if self._complement(a, b):
            return 0
        if a.uid > b.uid:
            a, b = b, a
        return self._make(("and", a.uid, b.uid), "and", a, b)

    def or_(self, a: Bit, b: Bit) -> Bit:
        if isinstance(a, int):
            return 1 if a else b
        if isinstance(b, int):
            return 1 if b else a
        if a is b:
            return a
        if self._complement(a, b):
            return 1
        if a.uid > b.uid:
            a, b = b, a
        return self._make(("or", a.uid, b.uid), "or", a, b)

    def xor_(self, a: Bit, b: Bit) -> Bit:
        if isinstance(a, int):
            return b if not a else self.not_(b)
        if isinstance(b, int):
            return a if not b else self.not_(a)
        if a is b:
            return 0
        if self._complement(a, b):
            return 1
        if a.uid > b.uid:
            a, b = b, a
        return self._make(("xor", a.uid, b.uid), "xor", a, b)

    def mux(self, cond: Bit, if_true: Bit, if_false: Bit) -> Bit:
        """``cond ? if_true : if_false``."""
        if isinstance(cond, int):
            return if_true if cond else if_false
        if if_true is if_false:
            return if_true
        return self.or_(self.and_(cond, if_true),
                        self.and_(self.not_(cond), if_false))

    # -- word plumbing ------------------------------------------------
    @staticmethod
    def is_concrete(word: Word) -> bool:
        return isinstance(word, int)

    @staticmethod
    def bits_of(word: Word) -> Tuple[Bit, ...]:
        if isinstance(word, int):
            return tuple((word >> i) & 1 for i in range(_WIDTH))
        return word

    @staticmethod
    def collapse(bits: Tuple[Bit, ...]) -> Word:
        value = 0
        for i, bit in enumerate(bits):
            if isinstance(bit, int):
                value |= bit << i
            else:
                return tuple(bits)
        return value

    def mux_word(self, cond: Bit, if_true: Word, if_false: Word) -> Word:
        if isinstance(cond, int):
            return if_true if cond else if_false
        ta, fa = self.bits_of(if_true), self.bits_of(if_false)
        return self.collapse(tuple(
            self.mux(cond, ta[i], fa[i]) for i in range(_WIDTH)))

    # -- flag-producing arithmetic (mirrors cpu.semantics) ------------
    def add(self, a: Word, b: Word, carry_in: Bit = 0
            ) -> Tuple[Word, Bit, Bit]:
        """``a + b + carry_in`` → (result, cf, of); exactly
        ``semantics._add``."""
        if (isinstance(a, int) and isinstance(b, int)
                and isinstance(carry_in, int)):
            total = a + b + carry_in
            result = total & MASK64
            cf = 1 if total > MASK64 else 0
            of = 1 if (~(a ^ b) & (a ^ result) & SIGN64) else 0
            return result, cf, of
        abits, bbits = self.bits_of(a), self.bits_of(b)
        out: List[Bit] = []
        carry: Bit = carry_in
        for i in range(_WIDTH):
            axb = self.xor_(abits[i], bbits[i])
            out.append(self.xor_(axb, carry))
            carry = self.or_(self.and_(abits[i], bbits[i]),
                             self.and_(carry, axb))
        a63, b63, r63 = abits[63], bbits[63], out[63]
        of = self.and_(self.not_(self.xor_(a63, b63)),
                       self.xor_(a63, r63))
        return self.collapse(tuple(out)), carry, of

    def sub(self, a: Word, b: Word, borrow_in: Bit = 0
            ) -> Tuple[Word, Bit, Bit]:
        """``a - b - borrow_in`` → (result, cf, of); exactly
        ``semantics._sub`` (cf is the borrow-out)."""
        if (isinstance(a, int) and isinstance(b, int)
                and isinstance(borrow_in, int)):
            total = a - b - borrow_in
            result = total & MASK64
            cf = 1 if total < 0 else 0
            of = 1 if ((a ^ b) & (a ^ result) & SIGN64) else 0
            return result, cf, of
        abits, bbits = self.bits_of(a), self.bits_of(b)
        out: List[Bit] = []
        borrow: Bit = borrow_in
        for i in range(_WIDTH):
            axb = self.xor_(abits[i], bbits[i])
            out.append(self.xor_(axb, borrow))
            borrow = self.or_(self.and_(self.not_(abits[i]), bbits[i]),
                              self.and_(borrow, self.not_(axb)))
        a63, b63, r63 = abits[63], bbits[63], out[63]
        of = self.and_(self.xor_(a63, b63), self.xor_(a63, r63))
        return self.collapse(tuple(out)), borrow, of

    def band(self, a: Word, b: Word) -> Word:
        if isinstance(a, int) and isinstance(b, int):
            return a & b
        abits, bbits = self.bits_of(a), self.bits_of(b)
        return self.collapse(tuple(
            self.and_(abits[i], bbits[i]) for i in range(_WIDTH)))

    def bor(self, a: Word, b: Word) -> Word:
        if isinstance(a, int) and isinstance(b, int):
            return a | b
        abits, bbits = self.bits_of(a), self.bits_of(b)
        return self.collapse(tuple(
            self.or_(abits[i], bbits[i]) for i in range(_WIDTH)))

    def bxor(self, a: Word, b: Word) -> Word:
        if isinstance(a, int) and isinstance(b, int):
            return a ^ b
        # xor-zeroing idiom: x ^ x == 0 even when x is symbolic
        if a is b:
            return 0
        abits, bbits = self.bits_of(a), self.bits_of(b)
        return self.collapse(tuple(
            self.xor_(abits[i], bbits[i]) for i in range(_WIDTH)))

    def bnot(self, a: Word) -> Word:
        if isinstance(a, int):
            return ~a & MASK64
        return self.collapse(tuple(self.not_(bit) for bit in a))

    def shl(self, a: Word, count: int) -> Tuple[Word, Bit]:
        """``a << count`` (count concrete, 1..63) → (result, cf)."""
        if isinstance(a, int):
            return ((a << count) & MASK64, (a >> (_WIDTH - count)) & 1)
        bits = self.bits_of(a)
        cf = bits[_WIDTH - count]
        out = (0,) * count + bits[:_WIDTH - count]
        return self.collapse(out), cf

    def shr(self, a: Word, count: int) -> Tuple[Word, Bit]:
        if isinstance(a, int):
            return (a >> count, (a >> (count - 1)) & 1)
        bits = self.bits_of(a)
        cf = bits[count - 1]
        out = bits[count:] + (0,) * count
        return self.collapse(out), cf

    def sar(self, a: Word, count: int) -> Tuple[Word, Bit]:
        if isinstance(a, int):
            return ((to_signed(a) >> count) & MASK64,
                    (a >> (count - 1)) & 1)
        bits = self.bits_of(a)
        cf = bits[count - 1]
        out = bits[count:] + (bits[63],) * count
        return self.collapse(out), cf

    # -- multiplication ------------------------------------------------
    def _mul_bits(self, abits: Tuple[Bit, ...], bbits: Tuple[Bit, ...],
                  width: int) -> List[Bit]:
        """Shift-add product of two ``width``-bit vectors, mod
        2**width.  Zero partial products are skipped, so a 0/1-valued
        operand (the rewriter's select predicates) costs one masked
        add."""
        acc: List[Bit] = [0] * width
        for j in range(width):
            bj = bbits[j]
            if isinstance(bj, int):
                if not bj:
                    continue
                partial = [0] * j + list(abits[:width - j])
            else:
                partial = [0] * j + [self.and_(abits[i], bj)
                                     for i in range(width - j)]
            carry: Bit = 0
            for i in range(j, width):
                ai, pi = acc[i], partial[i]
                if pi == 0 and carry == 0:
                    continue
                axb = self.xor_(ai, pi)
                acc[i] = self.xor_(axb, carry)
                carry = self.or_(self.and_(ai, pi), self.and_(carry, axb))
        return acc

    def imul(self, a: Word, b: Word) -> Tuple[Word, Bit]:
        """Signed multiply → (low 64 bits, overflow); exactly the
        ``imul`` handler (cf == of == overflow)."""
        if isinstance(a, int) and isinstance(b, int):
            product = to_signed(a) * to_signed(b)
            result = product & MASK64
            return result, (1 if to_signed(result) != product else 0)
        abits, bbits = self.bits_of(a), self.bits_of(b)
        # commutes: make the operand with fewer symbolic bits the
        # multiplier, so a 0/1 select predicate costs one partial
        if (sum(1 for bit in abits if not isinstance(bit, int))
                < sum(1 for bit in bbits if not isinstance(bit, int))):
            abits, bbits = bbits, abits
        sext_a = abits + (abits[63],) * _WIDTH
        sext_b = bbits + (bbits[63],) * _WIDTH
        prod = self._mul_bits(sext_a, sext_b, 2 * _WIDTH)
        overflow: Bit = 0
        for i in range(_WIDTH, 2 * _WIDTH):
            overflow = self.or_(overflow, self.xor_(prod[i],
                                                    prod[_WIDTH - 1]))
        return self.collapse(tuple(prod[:_WIDTH])), overflow

    def mul(self, a: Word, b: Word) -> Tuple[Word, Word]:
        """Unsigned widening multiply → (low, high); the ``mul``
        handler's rax/rdx pair."""
        if isinstance(a, int) and isinstance(b, int):
            product = a * b
            return product & MASK64, (product >> _WIDTH) & MASK64
        abits, bbits = self.bits_of(a), self.bits_of(b)
        if (sum(1 for bit in abits if not isinstance(bit, int))
                < sum(1 for bit in bbits if not isinstance(bit, int))):
            abits, bbits = bbits, abits
        zext_a = abits + (0,) * _WIDTH
        zext_b = bbits + (0,) * _WIDTH
        prod = self._mul_bits(zext_a, zext_b, 2 * _WIDTH)
        return (self.collapse(tuple(prod[:_WIDTH])),
                self.collapse(tuple(prod[_WIDTH:])))

    # -- predicates ----------------------------------------------------
    def is_zero(self, a: Word) -> Bit:
        """The ZF of ``a`` (1 iff every bit is 0)."""
        if isinstance(a, int):
            return 1 if a == 0 else 0
        pending: List[Bit] = [bit for bit in a if bit != 0]
        if not pending:
            return 1
        while len(pending) > 1:  # balanced OR tree keeps the DAG shallow
            nxt = [self.or_(pending[i], pending[i + 1])
                   for i in range(0, len(pending) - 1, 2)]
            if len(pending) % 2:
                nxt.append(pending[-1])
            pending = nxt
        return self.not_(pending[0])

    def sign(self, a: Word) -> Bit:
        if isinstance(a, int):
            return 1 if a & SIGN64 else 0
        return a[63]

    def eq_const(self, a: Word, value: int) -> Bit:
        return self.is_zero(self.bxor(a, value & MASK64))

    # -- model evaluation ---------------------------------------------
    def eval_bit(self, bit: Bit, model: Dict[str, bool],
                 cache: Optional[Dict[int, int]] = None) -> int:
        """Evaluate under a model; pass ``cache`` to share node values
        across calls for the same model (adjacent word bits share most
        of their carry DAG, so a shared cache is the difference
        between linear and quadratic evaluation)."""
        if isinstance(bit, int):
            return bit
        if cache is None:
            cache = {}
        stack: List[Tuple[Node, bool]] = [(bit, False)]
        while stack:
            node, ready = stack.pop()
            if node.uid in cache:
                continue
            if node.op == "var":
                cache[node.uid] = 1 if model.get(node.a, False) else 0
                continue
            deps = (node.a,) if node.op == "not" else (node.a, node.b)
            if not ready:
                stack.append((node, True))
                for dep in deps:
                    if isinstance(dep, Node) and dep.uid not in cache:
                        stack.append((dep, False))
                continue
            vals = [dep if isinstance(dep, int) else cache[dep.uid]
                    for dep in deps]
            if node.op == "not":
                cache[node.uid] = vals[0] ^ 1
            elif node.op == "and":
                cache[node.uid] = vals[0] & vals[1]
            elif node.op == "or":
                cache[node.uid] = vals[0] | vals[1]
            else:
                cache[node.uid] = vals[0] ^ vals[1]
        return cache[bit.uid]

    def eval_word(self, word: Word, model: Dict[str, bool]) -> int:
        if isinstance(word, int):
            return word
        cache: Dict[int, int] = {}
        value = 0
        for i, bit in enumerate(word):
            value |= self.eval_bit(bit, model, cache) << i
        return value
