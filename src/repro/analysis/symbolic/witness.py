"""Witness synthesis and dynamic replay.

A solver model is a truth assignment over the declared symbolic bits
of the secret input arrays; :func:`inputs_for_model` turns it back
into a concrete ``VictimProgram`` input map.  :func:`replay_btb_stream`
then runs that input start-to-halt on an instrumented
:class:`repro.cpu.core.Core` — exactly the
:func:`repro.analysis.differential.observe_run` harness — but keeps
the BTB-visible events **ordered**: divergence of two witnesses'
streams is the dynamic proof of a leak, bit-identical streams after
the constant-time rewrite are the dynamic proof of the repair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import differential
from ...cpu.config import CpuGeneration
from ...cpu.interp import run_function
from ...cpu.state import MachineState

__all__ = ["inputs_for_model", "replay_btb_stream",
           "replay_result_arrays", "BtbEvent"]

#: (event name, tag, set index, offset, fetch-block base or 0)
BtbEvent = Tuple[str, int, int, int, int]

_BTB_EVENTS = ("cpu.btb.insert", "cpu.btb.update", "cpu.core.false_hit")
_BLOCK_MASK = ~0x1F
_STACK_TOP = 0x7FFF_0000_0000


def inputs_for_model(domains: Sequence, model: Dict[str, bool],
                     template: Optional[Dict[str, int]] = None
                     ) -> Dict[str, int]:
    """Concrete input map for a solver model (unassigned bits are 0)."""
    inputs = dict(template or {})
    for domain in domains:
        value = domain.forced_or
        for j in range(domain.bits):
            position = domain.shift + j
            if model.get(f"{domain.array}.{position}", False):
                value |= 1 << position
        inputs[domain.array] = value
    return inputs


def replay_btb_stream(victim, inputs: Dict[str, int], *,
                      config: Optional[CpuGeneration] = None,
                      max_segments: int = 2_000_000) -> List[BtbEvent]:
    """Ordered BTB-visible event stream of one concrete run.

    Same harness as :func:`repro.analysis.differential.observe_run`
    (fast path off, fresh tracing telemetry session, yields resumed
    with ``rax = 0``), but the events keep their order — the stream
    *is* what a BTB-side observer sees, so stream equality is the
    convergence criterion for the rewrite validation.
    """
    from ... import telemetry
    from ...cpu import set_fast_path
    from ...cpu.config import DEFAULT_GENERATION
    from ...cpu.core import Core, StopReason

    memory = victim.new_memory(inputs)
    state = MachineState(memory)
    state.setup_stack(_STACK_TOP)
    if victim.compiled.start is None:
        raise ValueError("victim was compiled without a start stub")
    state.rip = victim.compiled.start
    previous = set_fast_path(False)
    try:
        with telemetry.session(trace=True) as sink:
            core = Core(config if config is not None
                        else DEFAULT_GENERATION)
            for _ in range(max_segments):
                result = core.run(state, collect_trace=True)
                if result.reason is StopReason.SYSCALL:
                    state.regs["rax"] = 0      # yields are no-ops
                    continue
                break
            else:
                raise RuntimeError(
                    f"victim did not halt within {max_segments} segments")
    finally:
        set_fast_path(previous)
    stream: List[BtbEvent] = []
    for event in sink.events:
        name = event.get("ev")
        if name not in _BTB_EVENTS:
            continue
        block = (event["pc"] & _BLOCK_MASK
                 if name == "cpu.core.false_hit" else 0)
        stream.append((name, event["tag"], event["set"],
                       event["off"], block))
    return stream


def replay_result_arrays(victim, inputs: Dict[str, int], *,
                         max_instructions: int = 5_000_000
                         ) -> Dict[str, Tuple[int, ...]]:
    """Run ``victim`` under the fast interpreter and read back every
    layout array — the functional-preservation oracle for the
    constant-time rewrite (same harness as
    :meth:`repro.victims.library.VictimProgram.ground_truth`)."""
    memory = victim.new_memory(inputs)
    state = MachineState(memory)
    state.setup_stack(_STACK_TOP)
    entry = victim.compiled.info(victim.main).entry
    run_function(state, entry, max_instructions=max_instructions,
                 syscall_handler=lambda s: True)
    arrays: Dict[str, Tuple[int, ...]] = {}
    for name, spec in sorted(victim.layout.arrays.items()):
        arrays[name] = tuple(
            state.memory.read_u64(spec.address + 8 * i)
            for i in range(spec.nlimbs))
    return arrays


def streams_diverge(first: Sequence[BtbEvent],
                    second: Sequence[BtbEvent]) -> bool:
    """True when two ordered BTB event streams differ anywhere."""
    return tuple(first) != tuple(second)


# re-exported for the certify report's summary counters
btb_insertions = differential.btb_insertions
