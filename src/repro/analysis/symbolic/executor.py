"""Bounded symbolic execution of compiled victims.

The executor runs the victim's binary from its start stub with
bit-vector words (:mod:`.bitvec`) for registers and memory.  Concrete
values stay Python ints (the fast path); only the declared symbolic
bits of the secret input arrays introduce :class:`~.bitvec.Node`
expressions.  At a conditional branch whose condition folds to a
constant the direction is simply recorded; at a *symbolic* condition
the solver decides which directions are feasible under the current
path predicate and the path forks.  Symbolic memory addresses (and
indirect branch targets) are soundly *enumerated*: every feasible
concrete value under the predicate becomes its own path.

Because the symbolic input domain is finite, exploration terminates
naturally; the step/path/gate budgets are a safety net whose
exhaustion is reported as an incomplete exploration (certified
``UNDECIDED``, never a wrong verdict).

Per completed path the executor records, for every conditional branch
site, the ordered *direction trace*, and for every
enumerated-address site the ordered *value trace* — the cross-path
comparison of these traces is exactly BTB-event-stream divergence,
which :mod:`.certify` turns into verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...cpu.state import MachineState
from ...errors import DecodeError
from ...isa.instructions import Cond, Kind
from ...isa.registers import MASK64
from ..cfg import CodeImage
from .bitvec import Bit, BitCtx, GateBudgetExceeded, Word
from .solver import SatResult, SolverStats, solve_bit

__all__ = ["ExploreBudget", "Exploration", "CompletedPath",
           "SymbolicExecError", "explore_victim"]

_STACK_TOP = 0x7FFF_0000_0000


class SymbolicExecError(Exception):
    """The executor hit something it cannot model soundly."""


@dataclass(frozen=True)
class ExploreBudget:
    """Safety-net bounds; exhaustion degrades soundly to UNDECIDED."""

    max_paths: int = 512
    max_steps: int = 600_000          # total retired symbolic steps
    max_gates: int = 4_000_000
    solver_decisions: int = 100_000
    enum_limit: int = 8               # feasible values per symbolic address


@dataclass
class CompletedPath:
    """One start-to-halt execution class of the victim."""

    index: int
    predicate: Bit
    model: Dict[str, bool]
    #: conditional site pc -> ordered taken/not-taken directions
    branch_traces: Dict[int, Tuple[int, ...]]
    #: enumerated-address site pc -> ordered concrete values
    access_traces: Dict[int, Tuple[int, ...]]
    steps: int


@dataclass
class Exploration:
    """Everything one exhaustive (or aborted) exploration produced."""

    paths: List[CompletedPath] = field(default_factory=list)
    #: reasons any path was abandoned; non-empty => incomplete
    aborted: List[str] = field(default_factory=list)
    steps: int = 0
    forks: int = 0
    stats: SolverStats = field(default_factory=SolverStats)
    ctx: BitCtx = field(default_factory=BitCtx)

    @property
    def complete(self) -> bool:
        return not self.aborted

    def branch_sites(self) -> List[int]:
        sites = set()
        for path in self.paths:
            sites.update(path.branch_traces)
        return sorted(sites)

    def access_sites(self) -> List[int]:
        sites = set()
        for path in self.paths:
            sites.update(path.access_traces)
        return sorted(sites)


class _Path:
    """Mutable in-flight path state (cheap to clone at forks)."""

    __slots__ = ("pc", "regs", "flags", "mem", "pred", "branch_traces",
                 "access_traces", "pinned", "steps")

    def __init__(self, pc: int, regs: List[Word], flags: Dict[str, Bit],
                 mem: Dict[int, Word], pred: Bit):
        self.pc = pc
        self.regs = regs
        self.flags = flags
        self.mem = mem                      # overlay over backing memory
        self.pred = pred
        self.branch_traces: Dict[int, List[int]] = {}
        self.access_traces: Dict[int, List[int]] = {}
        self.pinned: Dict[Tuple, int] = {}
        self.steps = 0

    def clone(self) -> "_Path":
        twin = _Path(self.pc, list(self.regs), dict(self.flags),
                     dict(self.mem), self.pred)
        twin.branch_traces = {pc: list(t)
                              for pc, t in self.branch_traces.items()}
        twin.access_traces = {pc: list(t)
                              for pc, t in self.access_traces.items()}
        twin.pinned = dict(self.pinned)
        twin.steps = self.steps
        return twin


def _sym_cond(ctx: BitCtx, cond: Cond, f: Dict[str, Bit]) -> Bit:
    """Bit-level mirror of :func:`repro.isa.instructions.evaluate_cond`."""
    zf, sf, cf, of = f["zf"], f["sf"], f["cf"], f["of"]
    if cond == Cond.E:
        return zf
    if cond == Cond.NE:
        return ctx.not_(zf)
    if cond == Cond.L:
        return ctx.xor_(sf, of)
    if cond == Cond.GE:
        return ctx.not_(ctx.xor_(sf, of))
    if cond == Cond.LE:
        return ctx.or_(zf, ctx.xor_(sf, of))
    if cond == Cond.G:
        return ctx.and_(ctx.not_(zf), ctx.not_(ctx.xor_(sf, of)))
    if cond == Cond.B:
        return cf
    if cond == Cond.AE:
        return ctx.not_(cf)
    if cond == Cond.BE:
        return ctx.or_(cf, zf)
    if cond == Cond.A:
        return ctx.and_(ctx.not_(cf), ctx.not_(zf))
    if cond == Cond.S:
        return sf
    if cond == Cond.NS:
        return ctx.not_(sf)
    if cond == Cond.O:
        return of
    if cond == Cond.NO:
        return ctx.not_(of)
    raise SymbolicExecError(f"unknown condition {cond!r}")


class _Engine:
    def __init__(self, victim, domains: Sequence,
                 template_inputs: Dict[str, int],
                 budget: ExploreBudget, ctx: Optional[BitCtx] = None):
        self.victim = victim
        self.budget = budget
        self.ctx = ctx if ctx is not None else BitCtx(budget.max_gates)
        self.ctx.gate_budget = budget.max_gates
        self.out = Exploration(ctx=self.ctx)
        self.image = CodeImage.from_program(victim.compiled.program)
        self._decoded: Dict[int, object] = {}

        inputs = dict(template_inputs)
        for domain in domains:
            inputs.setdefault(domain.array, domain.forced_or)
        state = MachineState(victim.new_memory(inputs))
        state.setup_stack(_STACK_TOP)
        self.backing = state.memory
        if victim.compiled.start is None:
            raise SymbolicExecError("victim compiled without a start stub")

        regs: List[Word] = list(state.regs._values)
        overlay: Dict[int, Word] = {}
        for domain in domains:
            spec = victim.layout[domain.array]
            sym = set(range(domain.shift, domain.shift + domain.bits))
            bits = tuple(
                self.ctx.var(f"{domain.array}.{i}") if i in sym
                else (domain.forced_or >> i) & 1
                for i in range(64))
            overlay[spec.address] = self.ctx.collapse(bits)
        flags: Dict[str, Bit] = {"zf": 0, "sf": 0, "cf": 0, "of": 0}
        self.initial = _Path(victim.compiled.start, regs, flags,
                             overlay, 1)

    # -- helpers -------------------------------------------------------
    def _decode(self, pc: int):
        inst = self._decoded.get(pc)
        if inst is None:
            try:
                inst, _ = self.image.decode(pc)
            except DecodeError as exc:
                raise SymbolicExecError(
                    f"undecodable pc {pc:#x}: {exc}") from exc
            self._decoded[pc] = inst
        return inst

    def _solve(self, bit: Bit) -> SatResult:
        return solve_bit(bit, ctx=self.ctx,
                         max_decisions=self.budget.solver_decisions,
                         stats=self.out.stats)

    def _read_mem(self, path: _Path, address: int) -> Word:
        word = path.mem.get(address)
        if word is not None:
            return word
        try:
            return self.backing.read_u64(address)
        except Exception as exc:
            raise SymbolicExecError(
                f"unreadable address {address:#x}: {exc}") from exc

    def _set_zs(self, flags: Dict[str, Bit], result: Word) -> None:
        flags["zf"] = self.ctx.is_zero(result)
        flags["sf"] = self.ctx.sign(result)

    def _concretize(self, path: _Path, word: Word, site_pc: int,
                    work: List[_Path]) -> int:
        """Pin a symbolic word to a concrete value, forking one path
        per feasible value under the path predicate."""
        ctx = self.ctx
        if isinstance(word, int):
            return word
        pinned = path.pinned.get(word)
        if pinned is not None:
            return pinned
        candidates: List[int] = []
        excl: Bit = path.pred
        while len(candidates) <= self.budget.enum_limit:
            result = self._solve(excl)
            if result.status == "unknown":
                raise SymbolicExecError(
                    f"solver budget exhausted at {site_pc:#x}")
            if result.status == "unsat":
                break
            value = ctx.eval_word(word, result.model)
            candidates.append(value)
            excl = ctx.and_(excl, ctx.not_(ctx.eq_const(word, value)))
        else:
            raise SymbolicExecError(
                f"address enumeration blew past "
                f"{self.budget.enum_limit} values at {site_pc:#x}")
        if not candidates:
            raise SymbolicExecError(
                f"infeasible path reached {site_pc:#x}")
        for value in candidates[1:]:
            twin = path.clone()
            twin.pred = ctx.and_(twin.pred, ctx.eq_const(word, value))
            twin.pinned[word] = value
            self.out.forks += 1
            work.append(twin)
        first = candidates[0]
        if len(candidates) > 1:
            path.pred = ctx.and_(path.pred, ctx.eq_const(word, first))
        path.pinned[word] = first
        return first

    def _address(self, path: _Path, base: int, disp: int,
                 pc: int, work: List[_Path]) -> int:
        address_word = path.regs[base]
        if not isinstance(address_word, int):
            value = self._concretize(path, address_word, pc, work)
            path.access_traces.setdefault(pc, []).append(value)
            address = (value + disp) & MASK64
        else:
            address = (address_word + disp) & MASK64
        if address % 8:
            raise SymbolicExecError(
                f"unaligned access {address:#x} at {pc:#x}")
        return address

    # -- main loop -----------------------------------------------------
    def run(self) -> Exploration:
        work: List[_Path] = [self.initial]
        path_count = 1
        while work:
            path = work.pop()
            try:
                self._run_path(path, work)
            except (SymbolicExecError, GateBudgetExceeded) as exc:
                self.out.aborted.append(f"{path.pc:#x}: {exc}")
            path_count = len(self.out.paths) + len(work) + 1
            if path_count > self.budget.max_paths:
                self.out.aborted.append(
                    f"path budget {self.budget.max_paths} exhausted")
                break
        return self.out

    def _run_path(self, path: _Path, work: List[_Path]) -> None:
        self._work = work
        while True:
            if self.out.steps >= self.budget.max_steps:
                raise SymbolicExecError(
                    f"step budget {self.budget.max_steps} exhausted")
            self.out.steps += 1
            path.steps += 1
            pc = path.pc
            inst = self._decode(pc)
            mnemonic = inst.mnemonic
            if inst.kind is Kind.COND_JUMP:
                self._branch(path, inst, pc, work)
                continue
            handler = getattr(self, "_h_" + mnemonic, None)
            if handler is not None:
                handler(path, inst, pc)
                continue
            if mnemonic.startswith("cmov"):
                self._cmov(path, inst, pc)
                continue
            if mnemonic.startswith("set"):
                self._setcc(path, inst, pc)
                continue
            if mnemonic in ("jmp", "jmp8"):
                path.pc = (pc + inst.length + inst.operands[0]) & MASK64
                continue
            if mnemonic == "call":
                target = (pc + inst.length + inst.operands[0]) & MASK64
                self._push(path, pc + inst.length, pc, work)
                path.pc = target
                continue
            if mnemonic in ("callr", "jmpr"):
                target = path.regs[inst.operands[0]]
                if not isinstance(target, int):
                    target = self._concretize(path, target, pc, work)
                    path.access_traces.setdefault(pc, []).append(target)
                if mnemonic == "callr":
                    self._push(path, pc + inst.length, pc, work)
                path.pc = target
                continue
            if mnemonic == "ret":
                target = self._pop(path, pc, work)
                if not isinstance(target, int):
                    raise SymbolicExecError(
                        f"symbolic return address at {pc:#x}")
                path.pc = target
                continue
            if mnemonic == "syscall":
                path.regs[0] = 0          # yields are no-ops (rax = 0)
                path.pc = pc + inst.length
                continue
            if mnemonic == "hlt":
                self._complete(path)
                return
            raise SymbolicExecError(f"no symbolic semantics for "
                                    f"{mnemonic} at {pc:#x}")

    def _complete(self, path: _Path) -> None:
        result = self._solve(path.pred)
        if result.status == "unknown":
            raise SymbolicExecError("solver budget exhausted at halt")
        if result.status == "unsat":   # pragma: no cover - pruned earlier
            raise SymbolicExecError("completed path has unsat predicate")
        model = {name: result.model.get(name, False)
                 for name in self.ctx.var_names()}
        self.out.paths.append(CompletedPath(
            index=len(self.out.paths),
            predicate=path.pred,
            model=model,
            branch_traces={pc: tuple(t)
                           for pc, t in path.branch_traces.items()},
            access_traces={pc: tuple(t)
                           for pc, t in path.access_traces.items()},
            steps=path.steps))

    # -- control flow --------------------------------------------------
    def _branch(self, path: _Path, inst, pc: int,
                work: List[_Path]) -> None:
        ctx = self.ctx
        cond = _sym_cond(ctx, inst.spec.cond, path.flags)
        trace = path.branch_traces.setdefault(pc, [])
        target = (pc + inst.length + inst.operands[0]) & MASK64
        fall = pc + inst.length
        if isinstance(cond, int):
            trace.append(cond)
            path.pc = target if cond else fall
            return
        taken = self._solve(ctx.and_(path.pred, cond))
        not_taken = self._solve(ctx.and_(path.pred, ctx.not_(cond)))
        if taken.status == "unknown" or not_taken.status == "unknown":
            raise SymbolicExecError(
                f"solver budget exhausted at branch {pc:#x}")
        if taken.is_sat and not_taken.is_sat:
            twin = path.clone()
            twin.pred = ctx.and_(twin.pred, ctx.not_(cond))
            twin.branch_traces[pc].append(0)
            twin.pc = fall
            self.out.forks += 1
            work.append(twin)
            path.pred = ctx.and_(path.pred, cond)
            trace.append(1)
            path.pc = target
            return
        if taken.is_sat:
            trace.append(1)                 # implied: no need to conjoin
            path.pc = target
            return
        if not_taken.is_sat:
            trace.append(0)
            path.pc = fall
            return
        raise SymbolicExecError(f"infeasible path at branch {pc:#x}")

    def _push(self, path: _Path, value: Word, pc: int,
              work: List[_Path]) -> None:
        rsp = path.regs[4]
        if not isinstance(rsp, int):
            raise SymbolicExecError(f"symbolic rsp at {pc:#x}")
        rsp = (rsp - 8) & MASK64
        path.regs[4] = rsp
        path.mem[rsp] = value

    def _pop(self, path: _Path, pc: int, work: List[_Path]) -> Word:
        rsp = path.regs[4]
        if not isinstance(rsp, int):
            raise SymbolicExecError(f"symbolic rsp at {pc:#x}")
        value = self._read_mem(path, rsp)
        path.regs[4] = (rsp + 8) & MASK64
        return value

    # -- sequential handlers (mirror cpu.semantics handlers) ----------
    def _h_nop(self, path, inst, pc):
        path.pc = pc + inst.length

    _h_lfence = _h_nop

    def _h_cmc(self, path, inst, pc):
        path.flags["cf"] = self.ctx.not_(path.flags["cf"])
        path.pc = pc + inst.length

    def _h_mov(self, path, inst, pc):
        dst, src = inst.operands
        path.regs[dst] = path.regs[src]
        path.pc = pc + inst.length

    def _h_xchg(self, path, inst, pc):
        dst, src = inst.operands
        path.regs[dst], path.regs[src] = path.regs[src], path.regs[dst]
        path.pc = pc + inst.length

    def _h_movi(self, path, inst, pc):
        dst, imm = inst.operands
        path.regs[dst] = imm & MASK64
        path.pc = pc + inst.length

    _h_movabs = _h_movi

    def _h_load(self, path, inst, pc):
        dst, base, disp = inst.operands
        # address enumeration may fork; the work list rides on the
        # engine so the handler signature stays uniform
        address = self._address(path, base, disp, pc, self._work)
        path.regs[dst] = self._read_mem(path, address)
        path.pc = pc + inst.length

    _h_loadw = _h_load

    def _h_store(self, path, inst, pc):
        base, src, disp = inst.operands
        address = self._address(path, base, disp, pc, self._work)
        path.mem[address] = path.regs[src]
        path.pc = pc + inst.length

    _h_storew = _h_store

    def _h_lea(self, path, inst, pc):
        dst, base, disp = inst.operands
        value = path.regs[base]
        if isinstance(value, int):
            path.regs[dst] = (value + disp) & MASK64
        else:
            result, _, _ = self.ctx.add(value, disp & MASK64)
            path.regs[dst] = result
        path.pc = pc + inst.length

    def _h_push(self, path, inst, pc):
        self._push(path, path.regs[inst.operands[0]], pc, self._work)
        path.pc = pc + inst.length

    def _h_pop(self, path, inst, pc):
        path.regs[inst.operands[0]] = self._pop(path, pc, self._work)
        path.pc = pc + inst.length

    # ALU
    def _alu_add(self, path, dst: int, b: Word, carry_in: Bit = 0):
        flags = path.flags
        result, cf, of = self.ctx.add(path.regs[dst], b, carry_in)
        flags["cf"], flags["of"] = cf, of
        self._set_zs(flags, result)
        path.regs[dst] = result

    def _alu_sub(self, path, dst: int, b: Word, borrow_in: Bit = 0,
                 write: bool = True):
        flags = path.flags
        result, cf, of = self.ctx.sub(path.regs[dst], b, borrow_in)
        flags["cf"], flags["of"] = cf, of
        self._set_zs(flags, result)
        if write:
            path.regs[dst] = result

    def _alu_logic(self, path, dst: int, result: Word,
                   write: bool = True):
        flags = path.flags
        flags["cf"], flags["of"] = 0, 0
        self._set_zs(flags, result)
        if write:
            path.regs[dst] = result

    def _h_add(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_add(path, dst, path.regs[src])
        path.pc = pc + inst.length

    def _h_sub(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_sub(path, dst, path.regs[src])
        path.pc = pc + inst.length

    def _h_adc(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_add(path, dst, path.regs[src], path.flags["cf"])
        path.pc = pc + inst.length

    def _h_sbb(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_sub(path, dst, path.regs[src], path.flags["cf"])
        path.pc = pc + inst.length

    def _h_and(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.band(path.regs[dst], path.regs[src]))
        path.pc = pc + inst.length

    def _h_or(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.bor(path.regs[dst], path.regs[src]))
        path.pc = pc + inst.length

    def _h_xor(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.bxor(path.regs[dst], path.regs[src]))
        path.pc = pc + inst.length

    def _h_cmp(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_sub(path, dst, path.regs[src], write=False)
        path.pc = pc + inst.length

    def _h_test(self, path, inst, pc):
        dst, src = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.band(path.regs[dst], path.regs[src]),
                        write=False)
        path.pc = pc + inst.length

    def _h_addi(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_add(path, dst, imm & MASK64)
        path.pc = pc + inst.length

    _h_addi8 = _h_addi

    def _h_subi(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_sub(path, dst, imm & MASK64)
        path.pc = pc + inst.length

    _h_subi8 = _h_subi

    def _h_cmpi(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_sub(path, dst, imm & MASK64, write=False)
        path.pc = pc + inst.length

    _h_cmpi8 = _h_cmpi

    def _h_andi(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.band(path.regs[dst], imm & MASK64))
        path.pc = pc + inst.length

    _h_andi8 = _h_andi

    def _h_ori(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.bor(path.regs[dst], imm & MASK64))
        path.pc = pc + inst.length

    _h_ori8 = _h_ori

    def _h_xori(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.bxor(path.regs[dst], imm & MASK64))
        path.pc = pc + inst.length

    _h_xori8 = _h_xori

    def _h_testi(self, path, inst, pc):
        dst, imm = inst.operands
        self._alu_logic(path, dst,
                        self.ctx.band(path.regs[dst], imm & MASK64),
                        write=False)
        path.pc = pc + inst.length

    def _h_imul(self, path, inst, pc):
        dst, src = inst.operands
        flags = path.flags
        result, overflow = self.ctx.imul(path.regs[dst], path.regs[src])
        flags["cf"] = overflow
        flags["of"] = overflow
        self._set_zs(flags, result)
        path.regs[dst] = result
        path.pc = pc + inst.length

    def _h_mul(self, path, inst, pc):
        src = inst.operands[0]
        flags = path.flags
        low, high = self.ctx.mul(path.regs[0], path.regs[src])
        path.regs[0] = low
        path.regs[2] = high
        nonzero = self.ctx.not_(self.ctx.is_zero(high))
        flags["cf"] = nonzero
        flags["of"] = nonzero
        self._set_zs(flags, low)
        path.pc = pc + inst.length

    def _h_div(self, path, inst, pc):
        src = inst.operands[0]
        divisor = path.regs[src]
        high, low = path.regs[2], path.regs[0]
        if not (isinstance(divisor, int) and isinstance(high, int)
                and isinstance(low, int)):
            raise SymbolicExecError(f"symbolic division at {pc:#x}")
        if divisor == 0:
            raise SymbolicExecError(f"divide by zero at {pc:#x}")
        numerator = (high << 64) | low
        quotient = numerator // divisor
        if quotient > MASK64:
            raise SymbolicExecError(f"divide overflow at {pc:#x}")
        path.regs[0] = quotient
        path.regs[2] = numerator % divisor
        path.pc = pc + inst.length

    def _shift(self, path, inst, pc, op):
        dst, imm = inst.operands
        count = imm & 63
        if count:                    # count == 0 leaves flags untouched
            flags = path.flags
            result, cf = op(path.regs[dst], count)
            flags["cf"] = cf
            flags["of"] = 0
            self._set_zs(flags, result)
            path.regs[dst] = result
        path.pc = pc + inst.length

    def _h_shl(self, path, inst, pc):
        self._shift(path, inst, pc, self.ctx.shl)

    def _h_shr(self, path, inst, pc):
        self._shift(path, inst, pc, self.ctx.shr)

    def _h_sar(self, path, inst, pc):
        self._shift(path, inst, pc, self.ctx.sar)

    def _h_inc(self, path, inst, pc):
        carry = path.flags["cf"]          # inc preserves CF
        self._alu_add(path, inst.operands[0], 1)
        path.flags["cf"] = carry
        path.pc = pc + inst.length

    def _h_dec(self, path, inst, pc):
        carry = path.flags["cf"]          # dec preserves CF
        self._alu_sub(path, inst.operands[0], 1)
        path.flags["cf"] = carry
        path.pc = pc + inst.length

    def _h_neg(self, path, inst, pc):
        dst = inst.operands[0]
        flags = path.flags
        value = path.regs[dst]
        result, _, of = self.ctx.sub(0, value)
        flags["of"] = of
        flags["cf"] = self.ctx.not_(self.ctx.is_zero(value))
        self._set_zs(flags, result)
        path.regs[dst] = result
        path.pc = pc + inst.length

    def _h_not(self, path, inst, pc):
        dst = inst.operands[0]
        path.regs[dst] = self.ctx.bnot(path.regs[dst])
        path.pc = pc + inst.length

    def _cmov(self, path, inst, pc):
        dst, src = inst.operands
        cond = _sym_cond(self.ctx, inst.spec.cond, path.flags)
        path.regs[dst] = self.ctx.mux_word(cond, path.regs[src],
                                           path.regs[dst])
        path.pc = pc + inst.length

    def _setcc(self, path, inst, pc):
        dst = inst.operands[0]
        cond = _sym_cond(self.ctx, inst.spec.cond, path.flags)
        if isinstance(cond, int):
            path.regs[dst] = cond
        else:
            path.regs[dst] = self.ctx.collapse((cond,) + (0,) * 63)
        path.pc = pc + inst.length


def explore_victim(victim, domains: Sequence,
                   template_inputs: Optional[Dict[str, int]] = None,
                   *, budget: Optional[ExploreBudget] = None,
                   ctx: Optional[BitCtx] = None) -> Exploration:
    """Exhaustively explore ``victim`` over the declared symbolic
    input ``domains`` (see ``repro.victims.library.SymbolicDomain``)."""
    engine = _Engine(victim, domains, dict(template_inputs or {}),
                     budget if budget is not None else ExploreBudget(),
                     ctx)
    return engine.run()
