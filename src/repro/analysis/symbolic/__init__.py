"""Symbolic leakage certification over the fixed-width ISA.

The taint lattice (:mod:`repro.analysis.taint`) answers *whether* a
secret can reach a BTB-visible event; this package answers *under
which concrete inputs it provably does*.  A symbolic executor
(:mod:`.executor`) walks the compiled victim with bit-vector
expressions (:mod:`.bitvec`) for registers and memory, accumulating a
path predicate over the declared symbolic bits of
``VictimProgram.secret_inputs``.  A built-in bit-blasting SAT solver
(:mod:`.solver` — Tseitin CNF + a compact DPLL core, no external SMT
dependency) prunes infeasible paths and synthesizes concrete witness
models.  :mod:`.certify` classifies every BTB-visible event as
``PROVEN_LEAKY`` (two witnesses with divergent replayed BTB event
streams), ``PROVEN_SAFE`` (exhaustive exploration, no divergence) or
``UNDECIDED`` (budget exhaustion — sound degradation), and closes the
loop through the constant-time rewriter
(:mod:`repro.lang.ctrewrite`) with re-certification and dynamic
witness replay (:mod:`.witness`).
"""

from .bitvec import BitCtx, GateBudgetExceeded, MASK64
from .solver import SatResult, solve_bit
from .executor import (ExploreBudget, Exploration, SymbolicExecError,
                       explore_victim)
from .witness import replay_btb_stream, replay_result_arrays
from .certify import (CertifyBudget, CertifyReport, FunctionVerdict,
                      PROVEN_LEAKY, PROVEN_SAFE, UNDECIDED,
                      certify_corpus, certify_victim, render_certify_report,
                      run_certify)

__all__ = [
    "BitCtx", "GateBudgetExceeded", "MASK64",
    "SatResult", "solve_bit",
    "ExploreBudget", "Exploration", "SymbolicExecError", "explore_victim",
    "replay_btb_stream", "replay_result_arrays",
    "CertifyBudget", "CertifyReport", "FunctionVerdict",
    "PROVEN_LEAKY", "PROVEN_SAFE", "UNDECIDED",
    "certify_corpus", "certify_victim", "render_certify_report",
    "run_certify",
]
