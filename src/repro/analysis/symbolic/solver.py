"""Bit-blasting SAT solver: Tseitin CNF + a compact DPLL core.

No external SMT dependency: the certifier's queries are Boolean DAGs
over a handful of declared secret bits, so a watched-literal DPLL
with unit propagation and chronological backtracking decides them in
microseconds.  Determinism is structural — variables are decided in
ascending index order with the ``False`` phase first — so witness
models (and therefore the certify report) are byte-stable.

``solve_bit`` returns :class:`SatResult` with status ``"sat"``
(plus a total model over the DAG's input variables), ``"unsat"``, or
``"unknown"`` when the decision budget runs out (the executor
degrades soundly to ``UNDECIDED``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .bitvec import Bit, Node

__all__ = ["SatResult", "solve_bit", "SolverStats"]


@dataclass
class SolverStats:
    """Deterministic counters surfaced in the certify report."""

    calls: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    decisions: int = 0


@dataclass
class SatResult:
    status: str                              # "sat" | "unsat" | "unknown"
    model: Dict[str, bool] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"


def _tseitin(root: Node) -> Tuple[int, List[List[int]], Dict[str, int]]:
    """Encode the DAG under ``root`` as CNF.

    Returns (variable count, clauses, input-variable map).  CNF
    variables are 1-based; clause literals are ±var.  The root is
    asserted true with a unit clause.
    """
    var_of: Dict[int, int] = {}
    inputs: Dict[str, int] = {}
    clauses: List[List[int]] = []
    counter = 0

    stack: List[Node] = [root]
    while stack:
        node = stack[-1]
        if node.uid in var_of:
            stack.pop()
            continue
        if node.op == "var":
            counter += 1
            var_of[node.uid] = counter
            inputs[node.a] = counter
            stack.pop()
            continue
        deps = [node.a] if node.op == "not" else [node.a, node.b]
        missing = [d for d in deps if d.uid not in var_of]
        if missing:
            stack.extend(missing)
            continue
        stack.pop()
        counter += 1
        v = var_of[node.uid] = counter
        if node.op == "not":
            a = var_of[node.a.uid]
            clauses.append([v, a])
            clauses.append([-v, -a])
        elif node.op == "and":
            a, b = var_of[node.a.uid], var_of[node.b.uid]
            clauses.append([-v, a])
            clauses.append([-v, b])
            clauses.append([v, -a, -b])
        elif node.op == "or":
            a, b = var_of[node.a.uid], var_of[node.b.uid]
            clauses.append([v, -a])
            clauses.append([v, -b])
            clauses.append([-v, a, b])
        else:  # xor
            a, b = var_of[node.a.uid], var_of[node.b.uid]
            clauses.append([-v, a, b])
            clauses.append([-v, -a, -b])
            clauses.append([v, -a, b])
            clauses.append([v, a, -b])

    clauses.append([var_of[root.uid]])
    return counter, clauses, inputs


def _dpll(num_vars: int, clauses: List[List[int]],
          max_decisions: int, stats: Optional[SolverStats]
          ) -> Tuple[str, List[int]]:
    """Watched-literal DPLL.  Returns (status, assignment) where
    ``assignment[v]`` is -1 (unassigned), 0 or 1."""
    assign = [-1] * (num_vars + 1)
    # two watched literals per clause (unit clauses watch one twice)
    watch: Dict[int, List[int]] = {}
    watching: List[List[int]] = []
    for idx, clause in enumerate(clauses):
        w = [clause[0], clause[-1] if len(clause) > 1 else clause[0]]
        watching.append(w)
        for lit in set(w):
            watch.setdefault(lit, []).append(idx)

    trail: List[int] = []                 # assigned literals, in order
    # (trail length at decision, decided literal, flipped?)
    decisions: List[Tuple[int, int, bool]] = []

    def value(lit: int) -> int:
        v = assign[abs(lit)]
        if v < 0:
            return -1
        return v if lit > 0 else v ^ 1

    def enqueue(lit: int) -> bool:
        v = value(lit)
        if v == 0:
            return False
        if v == 1:
            return True
        assign[abs(lit)] = 1 if lit > 0 else 0
        trail.append(lit)
        return True

    def propagate(start: int) -> bool:
        head = start
        while head < len(trail):
            lit = trail[head]
            head += 1
            falsified = -lit
            for idx in list(watch.get(falsified, ())):
                w = watching[idx]
                if falsified not in w:
                    continue
                other = w[0] if w[1] == falsified else w[1]
                if value(other) == 1:
                    continue
                # find a replacement watch
                moved = False
                for cand in clauses[idx]:
                    if cand == other or cand == falsified:
                        continue
                    if value(cand) != 0:
                        pos = 0 if w[0] == falsified else 1
                        w[pos] = cand
                        watch[falsified].remove(idx)
                        watch.setdefault(cand, []).append(idx)
                        moved = True
                        break
                if moved:
                    continue
                if not enqueue(other):       # unit or conflict
                    return False
        return True

    # top-level propagation of unit clauses
    for idx, clause in enumerate(clauses):
        if len(clause) == 1 and not enqueue(clause[0]):
            return "unsat", assign
    if not propagate(0):
        return "unsat", assign

    budget = max_decisions
    while True:
        decide = 0
        for v in range(1, num_vars + 1):
            if assign[v] < 0:
                decide = v
                break
        if not decide:
            return "sat", assign
        budget -= 1
        if stats is not None:
            stats.decisions += 1
        if budget < 0:
            return "unknown", assign
        decisions.append((len(trail), -decide, False))   # phase: False
        enqueue(-decide)
        while not propagate(len(trail) - 1):
            # chronological backtrack to the last unflipped decision
            while decisions and decisions[-1][2]:
                mark, lit, _ = decisions.pop()
                while len(trail) > mark:
                    assign[abs(trail.pop())] = -1
            if not decisions:
                return "unsat", assign
            mark, lit, _ = decisions.pop()
            while len(trail) > mark:
                assign[abs(trail.pop())] = -1
            decisions.append((mark, -lit, True))
            enqueue(-lit)


#: ceiling on declared variables for the bit-parallel truth-table
#: decision procedure (masks are 2**k bits wide)
_TT_MAX_VARS = 10


def _tt_var_masks(ctx) -> Dict[str, int]:
    """Mask per variable over all ``2**k`` assignments: bit ``i`` of
    variable ``j``'s mask is ``(i >> j) & 1`` with variables in
    ``ctx.var_names()`` order.  Cached on the ctx and rebuilt if the
    variable registry grew since."""
    names = ctx.var_names()
    if getattr(ctx, "_tt_names", None) != names:
        width = 1 << len(names)
        masks: Dict[str, int] = {}
        for j, name in enumerate(names):
            period = 1 << (j + 1)
            block = ((1 << (1 << j)) - 1) << (1 << j)
            mask = 0
            for start in range(0, width, period):
                mask |= block << start
            masks[name] = mask
        ctx._tt_names = names
        ctx._tt_masks = masks
        ctx._tt_cache = {}
    return ctx._tt_masks


def _truth_table(ctx, bit: Node) -> int:
    """Exhaustive truth table of ``bit`` as a ``2**k``-wide mask, one
    DAG walk with bit-parallel integer ops.  Node tables are cached on
    the ctx, so across a whole exploration each gate is evaluated
    once — every later query costs only its new gates."""
    masks = _tt_var_masks(ctx)
    cache: Dict[int, int] = ctx._tt_cache
    full = (1 << (1 << len(ctx._tt_names))) - 1
    stack: List[Tuple[Node, bool]] = [(bit, False)]
    while stack:
        node, ready = stack.pop()
        if node.uid in cache:
            continue
        if node.op == "var":
            cache[node.uid] = masks[node.a]
            continue
        deps = (node.a,) if node.op == "not" else (node.a, node.b)
        if not ready:
            stack.append((node, True))
            for dep in deps:
                if isinstance(dep, Node) and dep.uid not in cache:
                    stack.append((dep, False))
            continue
        vals = [(full if dep else 0) if isinstance(dep, int)
                else cache[dep.uid] for dep in deps]
        if node.op == "not":
            cache[node.uid] = full ^ vals[0]
        elif node.op == "and":
            cache[node.uid] = vals[0] & vals[1]
        elif node.op == "or":
            cache[node.uid] = vals[0] | vals[1]
        else:
            cache[node.uid] = vals[0] ^ vals[1]
    return cache[bit.uid]


def solve_bit(bit: Bit, *, ctx=None, max_decisions: int = 100_000,
              stats: Optional[SolverStats] = None) -> SatResult:
    """Decide satisfiability of a single Boolean DAG bit.

    With ``ctx`` supplied and at most :data:`_TT_MAX_VARS` declared
    variables, the exhaustive bit-parallel truth table decides the
    query exactly (and amortizes to one visit per gate across the
    run); otherwise the query is Tseitin-encoded and handed to DPLL.
    """
    if stats is not None:
        stats.calls += 1
    if isinstance(bit, int):
        status = "sat" if bit else "unsat"
        if stats is not None:
            setattr(stats, status, getattr(stats, status) + 1)
        return SatResult(status)
    if ctx is not None and len(ctx.var_names()) <= _TT_MAX_VARS:
        try:
            table = _truth_table(ctx, bit)
        except KeyError:       # bit built by a different ctx
            table = None
        if table is not None:
            if table == 0:
                if stats is not None:
                    stats.unsat += 1
                return SatResult("unsat")
            names = ctx._tt_names
            index = (table & -table).bit_length() - 1
            model = {name: bool((index >> j) & 1)
                     for j, name in enumerate(names)}
            if stats is not None:
                stats.sat += 1
            return SatResult("sat", model)
    num_vars, clauses, inputs = _tseitin(bit)
    status, assign = _dpll(num_vars, clauses, max_decisions, stats)
    if stats is not None:
        setattr(stats, status, getattr(stats, status) + 1)
    if status != "sat":
        return SatResult(status)
    model = {name: assign[cnf_var] == 1
             for name, cnf_var in inputs.items()}
    return SatResult("sat", model)
