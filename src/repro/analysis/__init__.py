"""Analysis toolbox: statistics, plain-text reporting, and the static
victim analyzer (CFG recovery, secret-taint lint, BTB-aliasing
prediction, analyzer-vs-simulator differential validation)."""

from .aliasing import (AliasMap, BranchSite, branch_sites,
                       build_alias_map, predicted_false_hits)
from .cfg import (CFG, BasicBlock, CodeImage, Edge, EdgeKind,
                  linear_sweep, recover_cfg, recover_module_cfg)
from .differential import (DifferentialReport, DynamicObservation,
                           observe_run, validate_victim)
from .lint import (LintReport, VictimLintResult, lint_corpus,
                   lint_victim, render_report, run_lint, victim_regions)
from .report import (ascii_table, campaign_block, degradation_block,
                     pct, series_block, service_block, spark)
from .stats import (
    accuracy,
    confidence_interval_95,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)
from .taint import (AbsVal, LeakFinding, Region, TaintReport,
                    analyze_taint)

__all__ = [
    "AbsVal",
    "AliasMap",
    "BasicBlock",
    "BranchSite",
    "CFG",
    "CodeImage",
    "DifferentialReport",
    "DynamicObservation",
    "Edge",
    "EdgeKind",
    "LeakFinding",
    "LintReport",
    "Region",
    "TaintReport",
    "VictimLintResult",
    "accuracy",
    "analyze_taint",
    "ascii_table",
    "branch_sites",
    "build_alias_map",
    "campaign_block",
    "confidence_interval_95",
    "degradation_block",
    "lint_corpus",
    "lint_victim",
    "linear_sweep",
    "mean",
    "median",
    "observe_run",
    "pct",
    "percentile",
    "predicted_false_hits",
    "recover_cfg",
    "recover_module_cfg",
    "render_report",
    "run_lint",
    "series_block",
    "service_block",
    "spark",
    "stdev",
    "summarize",
    "validate_victim",
    "victim_regions",
]
