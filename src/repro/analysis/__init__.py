"""Statistics and plain-text reporting used by the experiment
harnesses and benchmarks."""

from .report import (ascii_table, campaign_block, degradation_block,
                     pct, series_block, spark)
from .stats import (
    accuracy,
    confidence_interval_95,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)

__all__ = [
    "accuracy",
    "ascii_table",
    "campaign_block",
    "confidence_interval_95",
    "degradation_block",
    "mean",
    "median",
    "pct",
    "percentile",
    "series_block",
    "spark",
    "stdev",
    "summarize",
]
