"""Static BTB-aliasing prediction.

Computes, without running the simulator, the map an attacker uses for
probe placement (§2.1/§2.4 of the paper):

* every control-transfer instruction's BTB coordinates — set index,
  truncated tag, and 5-bit prediction-window offset of its **anchor
  byte** (the index the front end allocates under: the branch's last
  byte on Intel-family designs, its first byte on instruction-indexed
  backends);
* *collisions*: distinct branch PCs whose coordinates coincide after
  tag truncation (8/16 GiB aliasing — the NV-Core signal);
* *false hits*: fetch blocks that share (tag, set) with an entry whose
  offset does not land on the anchor byte of a control transfer in
  that block — fetching there makes the front end predict from the
  entry and deallocate it at decode (Takeaway 1, the NV-S signal).

All address math delegates to the backend strategies in
:mod:`repro.cpu.btb_backends` (selected by
``generation.btb_backend``) so analyzer and simulator cannot drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..cpu.btb_backends import make_backend
from ..cpu.config import CpuGeneration, DEFAULT_GENERATION
from ..isa.instructions import Instruction
from ..memory.address import BLOCK_SHIFT

#: a BTB coordinate triple
Coord = Tuple[int, int, int]            # (tag, set_index, offset)

_BLOCK_MASK = ~((1 << BLOCK_SHIFT) - 1)


@dataclass(frozen=True)
class BranchSite:
    """One control transfer and its BTB coordinates."""

    pc: int                              # first byte
    end_pc: int                          # last byte (Intel's BTB index)
    mnemonic: str
    coord: Coord

    def anchor(self, last_byte_index: bool) -> int:
        """The byte the configured backend indexes this branch by."""
        return self.end_pc if last_byte_index else self.pc


@dataclass
class AliasMap:
    """The static collision / false-hit map of one binary."""

    generation: CpuGeneration
    sites: List[BranchSite]
    #: coordinate -> branch sites allocating there
    by_coord: Dict[Coord, List[BranchSite]] = field(default_factory=dict)
    #: pairs of distinct branch end-bytes sharing a coordinate
    collisions: List[Tuple[BranchSite, BranchSite]] = field(
        default_factory=list)
    #: (coord, fetch block base) pairs where a lookup would *false-hit*:
    #: the block shares (tag, set) with the coord but the reconstructed
    #: end byte is not the last byte of any control transfer there
    false_hit_blocks: Set[Tuple[Coord, int]] = field(default_factory=set)

    def coords(self) -> FrozenSet[Coord]:
        return frozenset(site.coord for site in self.sites)

    def collision_count(self) -> int:
        return len(self.collisions)


def branch_sites(instrs: Dict[int, Instruction],
                 generation: CpuGeneration) -> List[BranchSite]:
    """BTB coordinates of every control transfer in ``instrs`` under
    ``generation``'s backend (coordinates are taken at the design's
    anchor byte)."""
    backend = make_backend(generation)
    sites: List[BranchSite] = []
    for pc in sorted(instrs):
        instruction = instrs[pc]
        if not instruction.is_control:
            continue
        end_pc = pc + instruction.length - 1
        anchor = end_pc if backend.last_byte_index else pc
        coord = backend.split(anchor)
        sites.append(BranchSite(pc, end_pc, instruction.mnemonic, coord))
    return sites


def build_alias_map(instrs: Dict[int, Instruction],
                    generation: CpuGeneration = DEFAULT_GENERATION,
                    ) -> AliasMap:
    """Compute the full static aliasing picture of one binary.

    ``instrs`` is a ``pc -> instruction`` map (typically a
    :func:`repro.analysis.cfg.linear_sweep`, so unreachable-but-
    decodable branches — which the fetch-ahead drain can still insert —
    are covered too).
    """
    sites = branch_sites(instrs, generation)
    amap = AliasMap(generation=generation, sites=sites)
    for site in sites:
        amap.by_coord.setdefault(site.coord, []).append(site)
    for coord, group in sorted(amap.by_coord.items()):
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if a.end_pc != b.end_pc:
                    amap.collisions.append((a, b))

    # ------------------------------------------------------------------
    # false-hit map: group the binary's fetch blocks by (tag, set);
    # any entry at (tag, set, off) false-hits in every such block whose
    # byte `base | off` is not a control transfer's anchor byte.  This
    # is exactly the front end's position-only check (the predicted
    # target is never consulted when settling — Takeaway 1).
    # ------------------------------------------------------------------
    backend = make_backend(generation)
    control_anchor_bytes = {site.anchor(backend.last_byte_index)
                            for site in sites}
    blocks_by_ts: Dict[Tuple[int, int], Set[int]] = {}
    for pc in instrs:
        instruction = instrs[pc]
        for byte_pc in range(pc, pc + instruction.length):
            base = byte_pc & _BLOCK_MASK
            tag, set_index, _ = backend.split(base)
            blocks_by_ts.setdefault((tag, set_index), set()).add(base)
    for coord in amap.by_coord:
        tag, set_index, offset = coord
        for base in blocks_by_ts.get((tag, set_index), ()):
            pred_end = base | offset
            if pred_end not in control_anchor_bytes:
                amap.false_hit_blocks.add((coord, base))
    return amap


def predicted_false_hits(amap: AliasMap) -> Set[Tuple[Coord, int]]:
    """The (entry coordinate, fetch block base) pairs where a false hit
    can fire."""
    return set(amap.false_hit_blocks)
