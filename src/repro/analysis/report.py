"""Plain-text rendering of experiment results (benches print these)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_BARS = " ▁▂▃▄▅▆▇█"


def ascii_table(headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    def line(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(width)
                         for value, width in zip(row, widths)).rstrip()
    separator = "  ".join("-" * width for width in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def spark(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low or 1.0
    return "".join(
        _BARS[int((value - low) / span * (len(_BARS) - 1))]
        for value in values
    )


def series_block(label: str, xs: Sequence[object],
                 ys: Sequence[float], unit: str = "") -> str:
    """A labelled series with sparkline and range, for figure benches."""
    suffix = f" {unit}" if unit else ""
    return (f"{label}: {spark(ys)}  "
            f"[{min(ys):.1f}..{max(ys):.1f}]{suffix} "
            f"({len(ys)} points, x={xs[0]}..{xs[-1]})")


def degradation_block(label: str, xs: Sequence[object],
                      series: Sequence[Tuple[str, Sequence[float]]]
                      ) -> str:
    """Render degradation curves (metric vs stress level) for several
    configurations side by side — one sparkline per series plus a
    point-by-point table (the robustness-ablation figures)."""
    lines = [label]
    for name, ys in series:
        if ys:
            lines.append(f"  {name:<12} {spark(ys)}  "
                         f"[{min(ys):.3f}..{max(ys):.3f}]")
        else:
            lines.append(f"  {name:<12} (no data)")
    headers = ["x"] + [name for name, _ in series]
    rows = [
        [x] + [f"{ys[index]:.3f}" if index < len(ys) else "-"
               for _, ys in series]
        for index, x in enumerate(xs)
    ]
    lines.append(ascii_table(headers, rows))
    return "\n".join(lines)


def campaign_block(campaign_id: str,
                   jobs: Sequence[Tuple[str, str, int, float, str]],
                   *, interrupted: bool = False) -> str:
    """Render a campaign manifest summary.

    ``jobs`` rows are ``(job_id, status, attempts, duration_s,
    digest_or_error)`` — the renderer stays decoupled from
    :mod:`repro.runner` by taking plain tuples.
    """
    table = ascii_table(
        ("job", "status", "attempts", "duration", "result"),
        [(job_id, status, attempts,
          f"{duration:.2f}s" if duration else "-",
          result or "-")
         for job_id, status, attempts, duration, result in jobs])
    counts: dict = {}
    for _, status, *_rest in jobs:
        counts[status] = counts.get(status, 0) + 1
    tally = ", ".join(f"{count} {status}"
                      for status, count in sorted(counts.items()))
    lines = [f"campaign {campaign_id}: {tally}"]
    if interrupted:
        lines.append("campaign INTERRUPTED — resume with "
                     f"`repro campaign --resume {campaign_id}`")
    lines.append(table)
    return "\n".join(lines)


def service_block(campaign_id: str, status: str,
                  shards: Sequence[Tuple[str, str, int, int, int,
                                         str]],
                  jobs: Sequence[Tuple[str, int]],
                  lost: Sequence[Tuple[str, Sequence[str]]] = (),
                  digest: str = "") -> str:
    """Render a sharded service campaign summary.

    ``shards`` rows are ``(shard_id, status, jobs, strikes, restarts,
    origin)`` and ``jobs`` rows ``(status, count)`` — plain tuples
    keep the renderer decoupled from :mod:`repro.service`, like
    :func:`campaign_block` is from the runner.
    """
    tally = ", ".join(f"{count} {status_}"
                      for status_, count in sorted(jobs))
    lines = [f"campaign {campaign_id}: {status} ({tally})"]
    if digest:
        lines.append(f"aggregate digest: {digest}")
    lines.append(ascii_table(
        ("shard", "status", "jobs", "strikes", "restarts", "origin"),
        [(shard_id, status_, count, strikes, restarts, origin or "-")
         for shard_id, status_, count, strikes, restarts, origin
         in shards]))
    for shard_id, job_ids in lost:
        lines.append(f"LOST from {shard_id}: "
                     + ", ".join(sorted(job_ids)))
    if status == "INTERRUPTED":
        lines.append("campaign INTERRUPTED — resume with "
                     f"`repro campaign --resume {campaign_id}`")
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100 * value:.1f}%"
