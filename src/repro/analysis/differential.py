"""Analyzer-vs-simulator differential validation.

The static layer is only trustworthy if it *contains* the dynamic
truth: every branch the simulator retires, every BTB insertion it
performs, and every false hit it settles must have been predicted
statically.  This module runs a victim on a fresh
:class:`repro.cpu.core.Core` inside a tracing
:func:`repro.telemetry.session`, collects the ``cpu.btb.insert`` /
``cpu.btb.update`` / ``cpu.core.false_hit`` events, and checks them
against the CFG / alias-map predictions.

Two numbers summarise the comparison:

* **recall** — fraction of observed events that were predicted; the
  contract is recall == 1.0 (containment), anything less is a bug in
  the analyzer or a semantics drift between it and the simulator;
* **precision** — fraction of *reachable* predictions that were
  observed; over-approximation is expected (both arms of every branch
  are predicted, one run takes one), but it must be bounded, not
  vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..cpu.config import CpuGeneration, DEFAULT_GENERATION
from ..cpu.core import Core, StopReason
from ..cpu.state import MachineState
from .aliasing import AliasMap, Coord, build_alias_map
from .cfg import CFG, CodeImage, linear_sweep, recover_module_cfg

_STACK_TOP = 0x7FFF_0000_0000


@dataclass
class DynamicObservation:
    """Everything the instrumented run produced."""

    trace: List[int]                     # retired instruction pcs
    #: (tag, set_index, offset) of every BTB allocate/update
    insertions: Set[Coord]
    #: (entry coordinate, fetch block base) of every settled false hit
    false_hits: Set[Tuple[Coord, int]]
    retired: int = 0


@dataclass
class DifferentialReport:
    """Containment + precision verdict for one victim run."""

    victim: str
    observation: DynamicObservation
    #: dynamic edges (src, dst) not statically predicted — must be empty
    unpredicted_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: dynamic insertions not statically predicted — must be empty
    unpredicted_insertions: List[Coord] = field(default_factory=list)
    #: dynamic false hits not statically predicted — must be empty
    unpredicted_false_hits: List[Tuple[Coord, int]] = field(
        default_factory=list)
    edge_precision: float = 1.0
    insertion_precision: float = 1.0
    precision: float = 1.0

    @property
    def contained(self) -> bool:
        return not (self.unpredicted_edges
                    or self.unpredicted_insertions
                    or self.unpredicted_false_hits)

    @property
    def recall(self) -> float:
        observed = (max(len(self.observation.trace) - 1, 0)
                    + len(self.observation.insertions)
                    + len(self.observation.false_hits))
        if observed == 0:
            return 1.0
        missed = (len(self.unpredicted_edges)
                  + len(self.unpredicted_insertions)
                  + len(self.unpredicted_false_hits))
        return 1.0 - missed / observed


def observe_run(victim, inputs: Dict[str, int], *,
                config: Optional[CpuGeneration] = None,
                max_segments: int = 2_000_000) -> DynamicObservation:
    """Run ``victim`` start-to-halt on an instrumented core.

    The run happens inside a fresh tracing telemetry session (isolated
    from any session the caller has open — the differential wants only
    its own victim's events), and the decoded-window fast path is
    disabled so every retirement goes through the full front-end model
    (the fast path is proven observably identical elsewhere; here we
    want the event stream, not speed).
    """
    from ..cpu import set_fast_path

    memory = victim.new_memory(inputs)
    state = MachineState(memory)
    state.setup_stack(_STACK_TOP)
    state.rip = victim.compiled.start
    trace: List[int] = []
    retired = 0
    previous = set_fast_path(False)
    try:
        with telemetry.session(trace=True) as sink:
            core = Core(config if config is not None
                        else DEFAULT_GENERATION)
            for _ in range(max_segments):
                result = core.run(state, collect_trace=True)
                if result.trace:
                    trace.extend(result.trace)
                retired += result.retired
                if result.reason is StopReason.SYSCALL:
                    state.regs["rax"] = 0      # yields are no-ops
                    continue
                break
            else:
                raise RuntimeError(
                    f"victim did not halt within {max_segments} segments")
    finally:
        set_fast_path(previous)
    insertions = btb_insertions(sink.events)
    observed_false_hits = false_hit_blocks(sink.events)
    return DynamicObservation(trace=trace, insertions=insertions,
                              false_hits=observed_false_hits,
                              retired=retired)


def btb_insertions(events: List[dict]) -> Set[Coord]:
    """(tag, set, offset) of every BTB insert/update in a trace."""
    return {(event["tag"], event["set"], event["off"])
            for event in events
            if event["ev"] in ("cpu.btb.insert", "cpu.btb.update")}


def false_hit_blocks(events: List[dict]) -> Set[Tuple[Coord, int]]:
    """(entry coordinate, fetch block base) of every false hit in a
    trace — the shape :class:`repro.analysis.aliasing.AliasMap`
    predicts."""
    block_mask = ~0x1F
    return {((event["tag"], event["set"], event["off"]),
             event["pc"] & block_mask)
            for event in events if event["ev"] == "cpu.core.false_hit"}


def validate_victim(victim, inputs: Dict[str, int], *,
                    name: str = "victim",
                    config: Optional[CpuGeneration] = None,
                    cfg: Optional[CFG] = None,
                    ) -> DifferentialReport:
    """Full differential check of one victim under one input vector."""
    generation = config if config is not None else DEFAULT_GENERATION
    if cfg is None:
        cfg = recover_module_cfg(victim.compiled)
    image = CodeImage.from_program(victim.compiled.program)
    swept = linear_sweep(image)
    # sweep ∪ descent: the fetch-ahead drain can insert entries for
    # decodable-but-unreachable branches, so containment is checked
    # against the union; precision against the reachable (descent) set.
    union = dict(swept)
    union.update(cfg.instrs)
    containment_map = build_alias_map(union, generation)
    reachable_map = build_alias_map(cfg.instrs, generation)

    observation = observe_run(victim, inputs, config=generation)
    report = DifferentialReport(victim=name, observation=observation)

    # -- edges ----------------------------------------------------------
    successors = cfg.successor_map()
    observed_edges: Set[Tuple[int, int]] = set()
    for src, dst in zip(observation.trace, observation.trace[1:]):
        observed_edges.add((src, dst))
        if src not in successors:
            report.unpredicted_edges.append((src, dst))
            continue
        allowed = successors[src]
        if allowed is not None and dst not in allowed:
            report.unpredicted_edges.append((src, dst))

    predicted_edges: Set[Tuple[int, int]] = set()
    for src, allowed in successors.items():
        if allowed is None:
            continue                     # ⊤: excluded from precision
        for dst in allowed:
            predicted_edges.add((src, dst))
    if predicted_edges:
        report.edge_precision = (
            len(predicted_edges & observed_edges) / len(predicted_edges))

    # -- BTB insertions -------------------------------------------------
    containment_coords = containment_map.coords()
    for coord in sorted(observation.insertions):
        if coord not in containment_coords:
            report.unpredicted_insertions.append(coord)
    predicted_coords = reachable_map.coords()
    if predicted_coords:
        report.insertion_precision = (
            len(predicted_coords & observation.insertions)
            / len(predicted_coords))

    # -- false hits -----------------------------------------------------
    predicted_fh = containment_map.false_hit_blocks
    for pair in sorted(observation.false_hits):
        if pair not in predicted_fh:
            report.unpredicted_false_hits.append(pair)

    # -- headline precision --------------------------------------------
    numerator = (len(predicted_edges & observed_edges)
                 + len(predicted_coords & observation.insertions))
    denominator = len(predicted_edges) + len(predicted_coords)
    report.precision = (numerator / denominator) if denominator else 1.0
    return report
