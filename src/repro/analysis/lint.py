"""The ``repro lint`` engine: leakage + aliasing audit of the victims
library.

For every victim in the lint corpus this module recovers the CFG,
runs the secret-taint analysis seeded from the victim's declared
``secret_inputs``, computes the static BTB-aliasing summary, and
renders one deterministic findings report.  A finding in a function
outside the victim's ``leak_allowlist`` is **NEW** — the lint exits
non-zero, which is how CI catches an unannotated secret-dependent
branch sneaking into a victim.

The report is byte-stable across runs (no timestamps, sorted rows), so
CI diffs it against a committed golden copy (``reports/lint_golden.txt``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cpu.config import CpuGeneration, DEFAULT_GENERATION
from .aliasing import AliasMap, build_alias_map
from .cfg import CFG, CodeImage, linear_sweep, recover_module_cfg
from .report import ascii_table
from .taint import LeakFinding, Region, TaintReport, analyze_taint


@dataclass
class VictimLintResult:
    """Everything the lint derived for one victim."""

    name: str
    cfg: CFG
    taint: TaintReport
    alias_map: AliasMap
    allowlist: Tuple[str, ...]

    @property
    def new_findings(self) -> List[LeakFinding]:
        allowed = set(self.allowlist)
        return [f for f in self.taint.findings
                if f.function not in allowed]

    @property
    def known_findings(self) -> List[LeakFinding]:
        allowed = set(self.allowlist)
        return [f for f in self.taint.findings if f.function in allowed]


@dataclass
class LintReport:
    """Aggregated lint verdict over the corpus."""

    results: List[VictimLintResult] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Tuple[str, LeakFinding]]:
        return [(result.name, finding)
                for result in self.results
                for finding in result.new_findings]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def render(self) -> str:
        return render_report(self)


def victim_regions(victim) -> List[Region]:
    """The taint regions of a victim's data layout."""
    return [Region(spec.name, spec.address, spec.size)
            for spec in victim.layout.arrays.values()]


def lint_victim(name: str, victim, *,
                generation: CpuGeneration = DEFAULT_GENERATION
                ) -> VictimLintResult:
    """Run CFG recovery, taint, and aliasing over one victim."""
    cfg = recover_module_cfg(victim.compiled)
    taint = analyze_taint(cfg, victim_regions(victim),
                          victim.secret_inputs)
    swept = linear_sweep(CodeImage.from_program(victim.compiled.program))
    swept.update(cfg.instrs)
    alias_map = build_alias_map(swept, generation)
    return VictimLintResult(name=name, cfg=cfg, taint=taint,
                            alias_map=alias_map,
                            allowlist=victim.leak_allowlist)


def lint_corpus() -> List[Tuple[str, object]]:
    """The victims the lint (and CI) audits, in report order."""
    from ..victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)

    return [
        ("gcd-2.5", build_gcd_victim("2.5")),
        ("gcd-2.16", build_gcd_victim("2.16")),
        ("gcd-3.0", build_gcd_victim("3.0")),
        ("bn_cmp", build_bn_cmp_victim()),
        ("bignum", build_bignum_victim()),
    ]


def run_lint(corpus: Optional[List[Tuple[str, object]]] = None, *,
             generation: CpuGeneration = DEFAULT_GENERATION
             ) -> LintReport:
    corpus = corpus if corpus is not None else lint_corpus()
    report = LintReport()
    for name, victim in corpus:
        report.results.append(
            lint_victim(name, victim, generation=generation))
    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_report(report: LintReport) -> str:
    lines: List[str] = []
    lines.append("repro lint — static victim audit")
    lines.append("================================")
    lines.append("")

    rows = []
    for result in report.results:
        cfg = result.cfg
        rows.append([
            result.name,
            str(len(cfg.blocks)),
            str(len(cfg.edges)),
            str(len(result.taint.findings)),
            str(len(result.new_findings)),
            str(result.alias_map.collision_count()),
            str(len(result.alias_map.false_hit_blocks)),
        ])
    lines.append(ascii_table(
        ["victim", "blocks", "edges", "findings", "new",
         "collisions", "false-hit sites"], rows))
    lines.append("")

    finding_rows = []
    for result in report.results:
        allowed = set(result.allowlist)
        for finding in result.taint.findings:
            status = ("known" if finding.function in allowed else "NEW")
            finding_rows.append([
                result.name,
                finding.function,
                f"{finding.pc:#x}",
                finding.mnemonic,
                finding.kind,
                status,
            ])
    if finding_rows:
        lines.append("leak findings")
        lines.append("-------------")
        lines.append(ascii_table(
            ["victim", "function", "pc", "mnemonic", "kind", "status"],
            finding_rows))
    else:
        lines.append("leak findings: none")
    lines.append("")

    warned = [(result.name, warning)
              for result in report.results
              for warning in result.taint.warnings]
    if warned:
        lines.append("analysis warnings")
        lines.append("-----------------")
        for name, warning in warned:
            lines.append(f"  {name}: {warning}")
        lines.append("")

    verdict = ("OK — every finding is annotated"
               if report.ok else
               f"FAIL — {len(report.new_findings)} unannotated "
               f"finding(s)")
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines) + "\n"
