"""Small statistics helpers used by the experiment harnesses."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values)
                     / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def confidence_interval_95(values: Sequence[float]
                           ) -> Tuple[float, float]:
    """Normal-approximation 95 % CI of the mean."""
    center = mean(values)
    if len(values) < 2:
        return center, center
    half = 1.96 * stdev(values) / math.sqrt(len(values))
    return center - half, center + half


def accuracy(predicted: Sequence, truth: Sequence) -> float:
    """Positional agreement; length mismatch counts as errors."""
    if not truth and not predicted:
        return 1.0
    correct = sum(1 for p, t in zip(predicted, truth) if p == t)
    return correct / max(len(predicted), len(truth))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    return {
        "n": float(len(values)),
        "mean": mean(values),
        "stdev": stdev(values),
        "min": min(values),
        "median": median(values),
        "max": max(values),
    }
