"""Secret-taint dataflow over recovered CFGs.

A forward, flow-sensitive, interprocedural (summary-based) taint
analysis seeded from a victim's *declared secret inputs* — the data
arrays an attacker ultimately wants.  It propagates taint through the
per-mnemonic semantics of the invented ISA and flags the exact leakage
surface the NightVision attacks exploit:

* **secret-dependent branches** — a conditional jump whose flags were
  produced from tainted data (NV-Core / branch shadowing's target);
* **secret-indexed memory accesses** — a load or store whose *address*
  is tainted (the classic cache-channel surface, reported for
  completeness).

The abstract value lattice tracks just enough structure to follow the
compiler's addressing idioms precisely:

``const v``  exact 64-bit constant
``frame o``  stack slot pointer: entry-``rsp``-relative offset ``o``
``ptr R``    pointer into one of the named data regions in ``R``
``top``      anything else

Every value additionally carries one taint bit.  Explicit flows only:
a branch *on* a secret taints neither arm's assignments (the classic
implicit-flow blind spot, called out in DESIGN.md §10) — which is fine
here, because the implicit flow is precisely what the lint is meant to
*report* at its source, the branch itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..isa.instructions import Kind
from ..isa.registers import MASK64, register_number
from .cfg import (CFG, nodes_on_cycles, postdominator_sets,
                  reachable_from)

_RSP = register_number("rsp")
_RAX = register_number("rax")
_RDX = register_number("rdx")
_ARG_REGS = tuple(register_number(r)
                  for r in ("rdi", "rsi", "rdx", "rcx", "r8", "r9"))
#: clobbered across a call under the compiler's convention
_CALLER_SAVED = tuple(register_number(r) for r in (
    "rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"))

_KIND_TOP = "top"
_KIND_CONST = "const"
_KIND_FRAME = "frame"
_KIND_PTR = "ptr"


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: a shape plus a taint bit."""

    kind: str = _KIND_TOP
    value: int = 0                       # const value / frame offset
    regions: FrozenSet[str] = frozenset()
    taint: bool = False

    def with_taint(self, taint: bool) -> "AbsVal":
        if taint == self.taint:
            return self
        return replace(self, taint=taint)


TOP = AbsVal()
TOP_TAINTED = AbsVal(taint=True)


def const(value: int, taint: bool = False) -> AbsVal:
    return AbsVal(_KIND_CONST, value & MASK64, frozenset(), taint)


def frame(offset: int, taint: bool = False) -> AbsVal:
    return AbsVal(_KIND_FRAME, offset, frozenset(), taint)


def ptr(regions: Iterable[str], taint: bool = False) -> AbsVal:
    return AbsVal(_KIND_PTR, 0, frozenset(regions), taint)


@dataclass(frozen=True)
class Region:
    """A named span of victim data memory (one array)."""

    name: str
    base: int
    size: int                            # bytes

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


@dataclass(frozen=True)
class LeakFinding:
    """One statically detected leak site."""

    kind: str                            # "secret-branch" | "secret-load"
    #                                    # | "secret-store"
    pc: int
    function: str
    mnemonic: str
    detail: str = ""

    def key(self) -> Tuple[str, str, int]:
        return (self.kind, self.function, self.pc)


# ----------------------------------------------------------------------
# abstract machine state
# ----------------------------------------------------------------------
class _State:
    """Registers + flags-taint + frame-relative stack cells."""

    __slots__ = ("regs", "flags_taint", "cells")

    def __init__(self, regs: Tuple[AbsVal, ...], flags_taint: bool,
                 cells: Dict[int, AbsVal]):
        self.regs = list(regs)
        self.flags_taint = flags_taint
        self.cells = dict(cells)

    @classmethod
    def at_entry(cls, args: Tuple[AbsVal, ...]) -> "_State":
        regs = [TOP] * 16
        for register, av in zip(_ARG_REGS, args):
            regs[register] = av
        regs[_RSP] = frame(0)
        # cells[0] holds the (untainted, opaque) return address
        return cls(tuple(regs), False, {0: TOP})

    def copy(self) -> "_State":
        return _State(tuple(self.regs), self.flags_taint, self.cells)

    def snapshot(self):
        return (tuple(self.regs), self.flags_taint,
                tuple(sorted(self.cells.items())))


def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    taint = a.taint or b.taint
    if a.kind == b.kind:
        if a.kind in (_KIND_CONST, _KIND_FRAME) and a.value == b.value:
            return a.with_taint(taint)
        if a.kind == _KIND_PTR:
            return ptr(a.regions | b.regions, taint)
        if a.kind == _KIND_TOP:
            return TOP_TAINTED if taint else TOP
    # const/ptr mixes stay pointers when both sides name regions
    regions = _regions_of(a) | _regions_of(b)
    if regions and all(v.kind in (_KIND_CONST, _KIND_PTR) for v in (a, b)):
        return ptr(regions, taint)
    return TOP_TAINTED if taint else TOP


def _regions_of(av: AbsVal) -> FrozenSet[str]:
    return av.regions


def _join_states(a: _State, b: _State) -> _State:
    regs = tuple(join_vals(x, y) for x, y in zip(a.regs, b.regs))
    cells: Dict[int, AbsVal] = {}
    for off in set(a.cells) & set(b.cells):
        cells[off] = join_vals(a.cells[off], b.cells[off])
    return _State(regs, a.flags_taint or b.flags_taint, cells)


# ----------------------------------------------------------------------
# the analysis
# ----------------------------------------------------------------------
@dataclass
class _FnSummary:
    args: Tuple[AbsVal, ...] = tuple([TOP] * 6)
    ret: AbsVal = TOP
    seeded: bool = False
    #: block starts whose terminator branches on secret-derived flags.
    #: A return *control-dependent* on one of these (post-dominator
    #: join, see ``_control_dependent``) carries implicit taint even
    #: when each arm returns a constant — the ``bn_cmp`` return-code
    #: idiom the GCD secret branch consumes.  Returns the secret
    #: branch cannot steer stay untainted, unlike the old
    #: whole-function rule.
    secret_branch_blocks: Set[int] = field(default_factory=set)


@dataclass
class TaintReport:
    """Result of :func:`analyze_taint`."""

    findings: List[LeakFinding]
    #: region name -> was it (transitively) tainted?
    region_taint: Dict[str, bool]
    #: analysis soundness warnings (unknown-address accesses, joins
    #: that lost stack-pointer shape, ...)
    warnings: List[str] = field(default_factory=list)

    def by_function(self) -> Dict[str, List[LeakFinding]]:
        grouped: Dict[str, List[LeakFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.function, []).append(finding)
        return grouped

    def flagged_functions(self) -> FrozenSet[str]:
        return frozenset(f.function for f in self.findings)


class _Analyzer:
    def __init__(self, cfg: CFG, regions: List[Region],
                 secret_regions: Set[str]):
        self.cfg = cfg
        self.regions = list(regions)
        self.region_taint: Dict[str, bool] = {
            r.name: r.name in secret_regions for r in self.regions}
        self.findings: Dict[Tuple[str, str, int], LeakFinding] = {}
        self.warnings: List[str] = []
        self.summaries: Dict[int, _FnSummary] = {}
        self._changed = False
        self._graphs: Dict[int, Dict[int, Set[int]]] = {}
        self._reach: Dict[Tuple[int, int], Set[int]] = {}
        self._pdom: Dict[int, Dict[int, Set[int]]] = {}
        self._cyclic: Dict[int, Set[int]] = {}
        self._rax_defs: Dict[int, Set[int]] = {}
        self._clean_reach: Dict[Tuple[int, int], Set[int]] = {}

    # -- region helpers -------------------------------------------------
    def _region_at(self, address: int) -> Optional[Region]:
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _classify_const(self, av: AbsVal) -> AbsVal:
        """Promote a constant that points into a data region."""
        if av.kind == _KIND_CONST:
            region = self._region_at(av.value)
            if region is not None:
                return ptr({region.name}, av.taint)
        return av

    def _regions_taint(self, names: FrozenSet[str]) -> bool:
        return any(self.region_taint.get(name, False) for name in names)

    def _taint_regions(self, names: FrozenSet[str]) -> None:
        for name in names:
            if not self.region_taint.get(name, False):
                if name in self.region_taint:
                    self.region_taint[name] = True
                    self._changed = True

    def _taint_all_regions(self, why: str) -> None:
        self._warn(why)
        for name, tainted in self.region_taint.items():
            if not tainted:
                self.region_taint[name] = True
                self._changed = True

    def _warn(self, message: str) -> None:
        if message not in self.warnings:
            self.warnings.append(message)

    def _record(self, kind: str, pc: int, mnemonic: str,
                detail: str) -> None:
        function = self.cfg.function_of(pc) or "?"
        finding = LeakFinding(kind, pc, function, mnemonic, detail)
        if finding.key() not in self.findings:
            self.findings[finding.key()] = finding
            self._changed = True

    # -- driver ---------------------------------------------------------
    def run(self, entry: int) -> None:
        self.summaries[entry] = _FnSummary(seeded=True)
        for round_index in range(64):
            self._changed = False
            for fn_entry in sorted(self.summaries):
                if self.summaries[fn_entry].seeded:
                    self._analyze_function(fn_entry)
            if not self._changed:
                return
        self._warn("taint fixpoint did not converge within 64 rounds")

    def _function_blocks(self, fn_entry: int) -> List[int]:
        return sorted(
            start for start, block in self.cfg.blocks.items()
            if self.cfg.function_entry_of.get(start) == fn_entry)

    def _block_graph(self, fn_entry: int) -> Dict[int, Set[int]]:
        """Intra-function block successor graph (calls fall through to
        their return site, rets exit, unresolved indirects
        conservatively reach every block of the function)."""
        graph = self._graphs.get(fn_entry)
        if graph is not None:
            return graph
        members = set(self._function_blocks(fn_entry))
        graph = {}
        for start in sorted(members):
            block = self.cfg.blocks[start]
            successors: Set[int] = {block.end}
            for pc in block.instructions:
                instruction = self.cfg.instrs[pc]
                kind = instruction.kind
                if kind is Kind.SEQUENTIAL or kind is Kind.SYSCALL:
                    continue
                if kind is Kind.CALL or kind is Kind.INDIRECT_CALL:
                    successors = {pc + instruction.length}
                elif kind is Kind.RET:
                    successors = set()
                else:
                    raw = self.cfg.successors(pc)
                    successors = (set(raw) if raw is not None
                                  else set(members))
                break
            graph[start] = successors & members
        self._graphs[fn_entry] = graph
        return graph

    def _control_dependent(self, fn_entry: int, ret_block: int,
                           summary: _FnSummary) -> bool:
        """Is the return at ``ret_block`` control-dependent on one of
        the function's secret branches (post-dominator join)?

        A secret branch ``B`` steers this return when the return is
        reachable from ``B`` and either ``B`` sits on a cycle (the
        branch decides *how many times* the path loops before
        returning — the ``bn_is_zero`` idiom) or the return does not
        post-dominate ``B`` (some direction of ``B`` bypasses it —
        the ``bn_cmp`` per-arm-return idiom).  Because the DSL
        compiler funnels every ``return`` through one shared epilogue
        (each arm is a guarded ``movi rax`` plus a jump), a third
        disjunct catches the arm-return idiom the epilogue hides: a
        block in the branch's *influence region* (reachable from the
        branch but not post-dominating it) defines ``rax`` and that
        definition reaches this return along a path with no
        intervening redefinition.  A return that post-dominates an
        acyclic secret branch and receives no such definition executes
        either way with a direction-independent value, so it stays
        untainted — unlike under the old rule, which tainted every
        return of any function containing a secret branch.  Residual
        blind spot: a constant staged through a *memory slot* under
        secret control (``r = 1`` in an arm, ``return r`` after the
        join) is still missed at this layer; the symbolic certifier
        (DESIGN.md §15) closes it exactly."""
        if not summary.secret_branch_blocks:
            return False
        graph, pdom, cyclic = self._dominance(fn_entry)
        for branch_block in sorted(summary.secret_branch_blocks):
            reach = self._branch_reach(fn_entry, branch_block)
            if ret_block not in reach:
                continue
            if branch_block in cyclic:
                return True
            branch_pdom = pdom.get(branch_block, set())
            if ret_block not in branch_pdom:
                return True
            influence = reach - branch_pdom
            if influence:
                defs = self._rax_def_blocks(fn_entry)
                clean = self._clean_rax_reach(fn_entry, ret_block)
                if influence & defs & clean:
                    return True
        return False

    def _dominance(self, fn_entry: int):
        graph = self._block_graph(fn_entry)
        pdom = self._pdom.get(fn_entry)
        cyclic = self._cyclic.get(fn_entry)
        if pdom is None or cyclic is None:
            pdom = postdominator_sets(graph)
            cyclic = nodes_on_cycles(graph)
            self._pdom[fn_entry] = pdom
            self._cyclic[fn_entry] = cyclic
        return graph, pdom, cyclic

    def _branch_reach(self, fn_entry: int, branch_block: int) -> Set[int]:
        key = (fn_entry, branch_block)
        reach = self._reach.get(key)
        if reach is None:
            graph = self._block_graph(fn_entry)
            reach = reachable_from(graph, graph.get(branch_block, ()))
            self._reach[key] = reach
        return reach

    def _rax_def_blocks(self, fn_entry: int) -> Set[int]:
        """Blocks containing an instruction that (re)defines rax —
        call return values included, flag/memory writers excluded."""
        defs = self._rax_defs.get(fn_entry)
        if defs is not None:
            return defs
        defs = set()
        for start in self._function_blocks(fn_entry):
            block = self.cfg.blocks[start]
            for pc in block.instructions:
                if self._instr_defines_rax(self.cfg.instrs[pc]):
                    defs.add(start)
                    break
        self._rax_defs[fn_entry] = defs
        return defs

    @staticmethod
    def _instr_defines_rax(instruction) -> bool:
        if instruction.kind in (Kind.CALL, Kind.INDIRECT_CALL):
            return True
        if instruction.kind not in (Kind.SEQUENTIAL, Kind.SYSCALL):
            return False
        m = instruction.mnemonic
        if m in ("syscall", "mul", "div"):
            return True                  # implicit rax destination
        if m in ("nop", "lfence", "push", "store", "storew", "cmp",
                 "test", "cmpi", "cmpi8", "testi", "cmc"):
            return False                 # flags/memory only
        ops = instruction.operands
        if m == "xchg":
            return _RAX in ops[:2]
        # everything else (mov/movi/load/pop/alu/shift/set*/cmov*
        # and the conservative unknown-mnemonic fallback) writes ops[0]
        return bool(ops) and ops[0] == _RAX

    def _clean_rax_reach(self, fn_entry: int, ret_block: int) -> Set[int]:
        """Blocks with a path to ``ret_block`` whose *intermediate*
        blocks never redefine rax: an rax definition made in such a
        block survives to the return (the block's own later
        redefinition — e.g. the shared epilogue's — does not apply,
        since the definition we track is the block's last)."""
        key = (fn_entry, ret_block)
        clean = self._clean_reach.get(key)
        if clean is not None:
            return clean
        graph = self._block_graph(fn_entry)
        defs = self._rax_def_blocks(fn_entry)
        preds: Dict[int, Set[int]] = {start: set() for start in graph}
        for start, succs in graph.items():
            for succ in succs:
                preds.setdefault(succ, set()).add(start)
        clean = set(preds.get(ret_block, ()))
        worklist = [n for n in clean if n not in defs]
        while worklist:
            node = worklist.pop()
            for pred in preds.get(node, ()):
                if pred not in clean:
                    clean.add(pred)
                    if pred not in defs:
                        worklist.append(pred)
        self._clean_reach[key] = clean
        return clean

    def _analyze_function(self, fn_entry: int) -> None:
        summary = self.summaries[fn_entry]
        in_states: Dict[int, _State] = {
            fn_entry: _State.at_entry(summary.args)}
        worklist: List[int] = [fn_entry]
        seen: Dict[int, object] = {}
        guard = 0
        while worklist:
            guard += 1
            if guard > 10_000:           # pragma: no cover - safety net
                self._warn(f"block worklist blow-up in fn {fn_entry:#x}")
                break
            start = worklist.pop(0)
            state = in_states[start].copy()
            snap = state.snapshot()
            if seen.get(start) == snap:
                continue
            seen[start] = snap
            block = self.cfg.blocks.get(start)
            if block is None:
                continue
            successors = self._transfer_block(fn_entry, block, state)
            for succ_pc, succ_state in successors:
                if succ_pc in in_states:
                    in_states[succ_pc] = _join_states(
                        in_states[succ_pc], succ_state)
                else:
                    in_states[succ_pc] = succ_state
                if succ_pc not in worklist:
                    worklist.append(succ_pc)

    # -- per-block transfer --------------------------------------------
    def _transfer_block(self, fn_entry: int, block,
                        state: _State) -> List[Tuple[int, _State]]:
        out: List[Tuple[int, _State]] = []
        for pc in block.instructions:
            instruction = self.cfg.instrs[pc]
            kind = instruction.kind
            if kind is Kind.SEQUENTIAL or kind is Kind.SYSCALL:
                self._transfer_instr(state, instruction, pc)
                continue
            # control transfer: terminates the block
            if kind is Kind.COND_JUMP:
                if state.flags_taint:
                    self._record("secret-branch", pc,
                                 instruction.mnemonic,
                                 "flags derived from secret data")
                    summary = self.summaries[fn_entry]
                    if block.start not in summary.secret_branch_blocks:
                        summary.secret_branch_blocks.add(block.start)
                        self._changed = True
            elif kind is Kind.CALL:
                target = pc + instruction.length + instruction.operands[0]
                self._transfer_call(state, target)
                # intra-procedurally, execution continues at the return
                # site with the post-call state (callee effects travel
                # through the summary, not through CFG edges)
                self._emit(out, fn_entry, pc + instruction.length, state)
                return out
            elif kind is Kind.RET:
                summary = self.summaries[fn_entry]
                ret_av = state.regs[_RAX]
                if self._control_dependent(fn_entry, block.start,
                                           summary):
                    ret_av = ret_av.with_taint(True)
                joined = join_vals(summary.ret, ret_av)
                if joined != summary.ret:
                    summary.ret = joined
                    self._changed = True
                return out
            elif kind is Kind.INDIRECT_CALL:
                self._transfer_unknown_call(state)
                self._emit(out, fn_entry, pc + instruction.length, state)
                return out
            # COND_JUMP / DIRECT_JUMP / INDIRECT_JUMP / HALT: follow
            # the in-function static successors
            succ = self.cfg.successors(pc)
            if succ:
                for dst in sorted(succ):
                    self._emit(out, fn_entry, dst, state)
            return out
        # block fell through without a terminator
        self._emit(out, fn_entry, block.end, state)
        return out

    def _emit(self, out: List[Tuple[int, _State]], fn_entry: int,
              dst: int, state: _State) -> None:
        """Queue ``dst`` if it is a block of the same function."""
        if (dst in self.cfg.blocks
                and self.cfg.function_entry_of.get(dst) == fn_entry):
            out.append((dst, state.copy()))

    def _transfer_call(self, state: _State, target: int) -> None:
        args = tuple(self._classify_const(state.regs[r])
                     for r in _ARG_REGS)
        summary = self.summaries.setdefault(target, _FnSummary())
        if not summary.seeded:
            # first observed call site *sets* the argument shapes; a
            # join with the TOP default would discard them forever
            summary.args = args
            summary.seeded = True
            self._changed = True
        else:
            joined = tuple(join_vals(a, b)
                           for a, b in zip(summary.args, args))
            if joined != summary.args:
                summary.args = joined
                self._changed = True
        self._after_call(state, summary.ret)

    def _transfer_unknown_call(self, state: _State) -> None:
        tainted = any(self.region_taint.values())
        self._after_call(state, TOP_TAINTED if tainted else TOP)

    def _after_call(self, state: _State, ret_av: AbsVal) -> None:
        for register in _CALLER_SAVED:
            state.regs[register] = TOP
        state.regs[_RAX] = ret_av
        state.flags_taint = False
        sp = state.regs[_RSP]
        if sp.kind == _KIND_FRAME:
            # arguments/temps at or below the callee frame are dead
            state.cells = {off: av for off, av in state.cells.items()
                           if off >= sp.value}

    # -- per-instruction transfer ---------------------------------------
    def _transfer_instr(self, state: _State, instruction, pc: int) -> None:
        m = instruction.mnemonic
        ops = instruction.operands
        regs = state.regs

        if m == "nop" or m == "lfence":
            return
        if m == "syscall":
            regs[_RAX] = TOP
            return
        if m in ("mov",):
            regs[ops[0]] = regs[ops[1]]
            return
        if m in ("movi", "movabs"):
            regs[ops[0]] = self._classify_const(const(ops[1]))
            return
        if m == "xchg":
            regs[ops[0]], regs[ops[1]] = regs[ops[1]], regs[ops[0]]
            return
        if m == "lea":
            regs[ops[0]] = self._address_of(regs[ops[1]], ops[2])
            return
        if m == "push":
            self._push(state, regs[ops[0]], pc)
            return
        if m == "pop":
            regs[ops[0]] = self._pop(state, pc)
            return
        if m in ("load", "loadw"):
            regs[ops[0]] = self._load(state, regs[ops[1]], ops[2], pc, m)
            return
        if m in ("store", "storew"):
            self._store(state, regs[ops[0]], ops[2], regs[ops[1]], pc, m)
            return
        if m.startswith("set"):
            regs[ops[0]] = AbsVal(_KIND_TOP, taint=state.flags_taint)
            return
        if m.startswith("cmov"):
            src = regs[ops[1]]
            merged = join_vals(regs[ops[0]], src)
            regs[ops[0]] = merged.with_taint(
                merged.taint or state.flags_taint)
            return
        if m == "mul":
            taint = regs[_RAX].taint or regs[ops[0]].taint
            regs[_RAX] = AbsVal(_KIND_TOP, taint=taint)
            regs[_RDX] = AbsVal(_KIND_TOP, taint=taint)
            state.flags_taint = taint
            return
        if m == "div":
            taint = (regs[_RAX].taint or regs[_RDX].taint
                     or regs[ops[0]].taint)
            regs[_RAX] = AbsVal(_KIND_TOP, taint=taint)
            regs[_RDX] = AbsVal(_KIND_TOP, taint=taint)
            state.flags_taint = taint
            return
        if m in ("cmp", "test"):
            state.flags_taint = regs[ops[0]].taint or regs[ops[1]].taint
            return
        if m in ("cmpi", "cmpi8", "testi"):
            state.flags_taint = regs[ops[0]].taint
            return
        if m == "cmc":
            return                       # flips CF; taint unchanged
        if m in ("inc", "dec", "neg", "not"):
            src = regs[ops[0]]
            if src.kind == _KIND_CONST:
                delta = {"inc": 1, "dec": -1}.get(m)
                if delta is not None:
                    regs[ops[0]] = const(src.value + delta, src.taint)
                else:
                    regs[ops[0]] = AbsVal(_KIND_TOP, taint=src.taint)
            else:
                regs[ops[0]] = AbsVal(_KIND_TOP, taint=src.taint)
            if m != "not":
                state.flags_taint = src.taint
            return
        if m in ("add", "sub", "adc", "sbb", "and", "or", "xor", "imul"):
            self._alu_rr(state, m, ops[0], ops[1])
            return
        if m in ("addi", "addi8", "subi", "subi8", "andi", "andi8",
                 "ori", "ori8", "xori", "xori8"):
            self._alu_ri(state, m, ops[0], ops[1])
            return
        if m in ("shl", "shr", "sar"):
            src = regs[ops[0]]
            if src.kind == _KIND_CONST:
                shifted = {
                    "shl": src.value << ops[1],
                    "shr": src.value >> ops[1],
                    "sar": src.value >> ops[1],
                }[m] & MASK64
                regs[ops[0]] = const(shifted, src.taint)
            else:
                regs[ops[0]] = AbsVal(_KIND_TOP, taint=src.taint)
            state.flags_taint = src.taint
            return
        # unknown mnemonic: conservatively smash the destination
        self._warn(f"no taint transfer for mnemonic '{m}'")
        if ops:
            regs[ops[0]] = TOP_TAINTED

    # -- helpers ---------------------------------------------------------
    def _address_of(self, base: AbsVal, disp: int) -> AbsVal:
        base = self._classify_const(base)
        if base.kind == _KIND_FRAME:
            return frame(base.value + disp, base.taint)
        if base.kind == _KIND_PTR:
            return ptr(base.regions, base.taint)
        if base.kind == _KIND_CONST:
            return self._classify_const(const(base.value + disp,
                                              base.taint))
        return base

    def _push(self, state: _State, av: AbsVal, pc: int) -> None:
        sp = state.regs[_RSP]
        if sp.kind != _KIND_FRAME:
            self._warn(f"push with unknown stack pointer at {pc:#x}")
            return
        state.regs[_RSP] = frame(sp.value - 8)
        state.cells[sp.value - 8] = av

    def _pop(self, state: _State, pc: int) -> AbsVal:
        sp = state.regs[_RSP]
        if sp.kind != _KIND_FRAME:
            self._warn(f"pop with unknown stack pointer at {pc:#x}")
            return TOP
        state.regs[_RSP] = frame(sp.value + 8)
        return state.cells.pop(sp.value, TOP)

    def _load(self, state: _State, base: AbsVal, disp: int, pc: int,
              mnemonic: str) -> AbsVal:
        address = self._address_of(base, disp)
        if address.taint:
            self._record("secret-load", pc, mnemonic,
                         "load address derived from secret data")
        if address.kind == _KIND_FRAME:
            return state.cells.get(address.value, TOP)
        if address.kind == _KIND_PTR:
            taint = address.taint or self._regions_taint(address.regions)
            return AbsVal(_KIND_TOP, taint=taint)
        self._warn(f"load from unknown address at {pc:#x}")
        taint = address.taint or any(self.region_taint.values())
        return AbsVal(_KIND_TOP, taint=taint)

    def _store(self, state: _State, base: AbsVal, disp: int,
               value: AbsVal, pc: int, mnemonic: str) -> None:
        address = self._address_of(base, disp)
        if address.taint:
            self._record("secret-store", pc, mnemonic,
                         "store address derived from secret data")
        if address.kind == _KIND_FRAME:
            state.cells[address.value] = value
            return
        if address.kind == _KIND_PTR:
            if value.taint:
                self._taint_regions(address.regions)
            return
        self._taint_all_regions(
            f"store to unknown address at {pc:#x}"
            if not value.taint else
            f"tainted store to unknown address at {pc:#x}")

    def _alu_rr(self, state: _State, m: str, dst: int, src: int) -> None:
        regs = state.regs
        a = self._classify_const(regs[dst])
        b = self._classify_const(regs[src])
        if m in ("xor", "sub", "sbb") and dst == src:
            regs[dst] = const(0)         # zeroing idiom clears taint
            state.flags_taint = False
            return
        taint = a.taint or b.taint
        if m in ("adc", "sbb"):
            taint = taint or state.flags_taint
        result: AbsVal
        if a.kind == _KIND_CONST and b.kind == _KIND_CONST:
            folded = {
                "add": a.value + b.value, "sub": a.value - b.value,
                "and": a.value & b.value, "or": a.value | b.value,
                "xor": a.value ^ b.value, "imul": a.value * b.value,
            }.get(m)
            result = (const(folded, taint) if folded is not None
                      else AbsVal(_KIND_TOP, taint=taint))
            result = self._classify_const(result)
        elif m == "add" and _KIND_FRAME in (a.kind, b.kind):
            fr, other = (a, b) if a.kind == _KIND_FRAME else (b, a)
            result = (frame(fr.value + other.value, taint)
                      if other.kind == _KIND_CONST
                      else AbsVal(_KIND_TOP, taint=taint))
        elif m == "sub" and a.kind == _KIND_FRAME:
            result = (frame(a.value - b.value, taint)
                      if b.kind == _KIND_CONST
                      else AbsVal(_KIND_TOP, taint=taint))
        elif m == "add" and (a.regions or b.regions):
            result = ptr(a.regions | b.regions, taint)
        elif m == "sub" and a.regions:
            result = ptr(a.regions, taint)
        else:
            result = AbsVal(_KIND_TOP, taint=taint)
        regs[dst] = result
        state.flags_taint = taint

    def _alu_ri(self, state: _State, m: str, dst: int, imm: int) -> None:
        regs = state.regs
        a = self._classify_const(regs[dst])
        op = m.rstrip("8").rstrip("i")   # addi/addi8 -> add
        taint = a.taint
        if a.kind == _KIND_CONST:
            folded = {
                "add": a.value + imm, "sub": a.value - imm,
                "and": a.value & imm, "or": a.value | imm,
                "xor": a.value ^ imm,
            }[op]
            regs[dst] = self._classify_const(const(folded, taint))
        elif a.kind == _KIND_FRAME and op in ("add", "sub"):
            delta = imm if op == "add" else -imm
            regs[dst] = frame(a.value + delta, taint)
        elif a.kind == _KIND_PTR and op in ("add", "sub"):
            regs[dst] = ptr(a.regions, taint)
        else:
            regs[dst] = AbsVal(_KIND_TOP, taint=taint)
        state.flags_taint = taint


def analyze_taint(cfg: CFG, regions: Iterable[Region],
                  secret_regions: Iterable[str]) -> TaintReport:
    """Run the taint analysis over ``cfg``.

    ``regions`` describes the victim's data arrays; ``secret_regions``
    names the subset holding secrets.  Returns every leak finding plus
    the final (monotone) region-taint map.
    """
    secret = set(secret_regions)
    region_list = list(regions)
    known = {r.name for r in region_list}
    missing = secret - known
    if missing:
        raise ValueError(
            f"secret regions not in the data layout: {sorted(missing)}")
    analyzer = _Analyzer(cfg, region_list, secret)
    analyzer.run(cfg.entry)
    findings = sorted(analyzer.findings.values(),
                      key=lambda f: (f.function, f.pc))
    return TaintReport(findings=findings,
                       region_taint=dict(analyzer.region_taint),
                       warnings=list(analyzer.warnings))
