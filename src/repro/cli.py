"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible experiment with its paper artefact.
``run <experiment> [--fast] [--seed N] [--backend B] [--out DIR]``
    Run one experiment harness and print its findings.  ``--backend``
    re-runs it on a non-default BTB design family
    (intel/arm/sodor/orcs, see :mod:`repro.cpu.btb_backends`).
``demo``
    A 30-second tour: Takeaways 1 & 2 plus one NV-Core detection.
``campaign``
    Run the whole experiment suite through the crash-tolerant runner
    (:mod:`repro.runner`): subprocess-isolated workers, watchdog
    timeouts, retry with backoff, checkpointed ``--resume``, and a
    ``--chaos kill-worker`` failure drill.  With ``--shards N`` the
    campaign runs through the sharded service scheduler
    (:mod:`repro.service`) instead: N supervised process-group fault
    domains, heartbeat leases, a consecutive-failure circuit breaker
    with quarantine + job reassignment, and the shard-level
    ``--chaos kill-shard`` / ``--chaos stall-shard`` drills.  Exits
    0 COMPLETED, 1 FAILED, 3 INTERRUPTED (resumable), 4 DEGRADED
    (completed with exactly-accounted job loss).
``serve [--port P] [--runs-dir DIR] [--queue-depth N]``
    Run the campaign service: a stdlib HTTP/JSON API
    (:mod:`repro.service.http`) with bounded-queue admission control
    in front of the sharded scheduler.  SIGTERM/SIGINT shut down
    gracefully — the running campaign checkpoints as resumable.
``submit [--url URL] [...campaign flags]``
    Submit a campaign to a running service and (by default) wait for
    its terminal state; same exit-code contract as ``campaign``.
``bench``
    Run the perf-regression suite (:mod:`repro.perf.suite`): times the
    simulator hot loops with the decoded-window fast path off and on,
    writes ``BENCH_perf.json``, and can gate against a baseline.
``stats <experiment> [--fast] [--seed N] [--out PATH] [--timings]``
    Run one experiment inside a tracing telemetry session
    (:mod:`repro.telemetry`) and print the deterministic counter
    report with its digest.  ``--timings`` appends the wall-clock
    span section to the console (never to the ``--out`` artifact,
    which stays byte-stable under a fixed seed).
``trace <experiment> [--fast] [--seed N] [--out PATH]``
    Same run, but write the structured event trace as canonical JSON
    lines — byte-identical across runs with the same seed.  Default
    output path is ``TRACE_<experiment>.jsonl``; ``--out -`` streams
    to stdout.
``lint``
    Static leakage + BTB-aliasing audit of the victims library
    (:mod:`repro.analysis.lint`): CFG recovery, secret-taint dataflow
    seeded from each victim's declared secret inputs, and the
    collision/false-hit map.  Exits non-zero on findings outside a
    victim's ``leak_allowlist`` (or on golden-report drift with
    ``--golden``).
``portability``
    Run ``exp_portability``: the attack × BTB-design survival matrix
    (NV-Core deallocation, PW-range traversal and fingerprinting
    against the intel/arm/sodor/orcs backends).  The output is
    byte-stable; ``--golden`` diffs it against the committed report
    (exit 3 on drift), mirroring ``lint``/``certify``.
``certify``
    Symbolic leakage certification
    (:mod:`repro.analysis.symbolic`): path-sensitive bit-vector
    exploration proves every BTB-visible branch site
    ``PROVEN_LEAKY`` (with two synthesized witnesses whose replayed
    BTB event streams diverge) or ``PROVEN_SAFE``, then re-certifies
    and dynamically validates the constant-time auto-rewrite.  Exit 2
    on new leaks or failed validation, 3 on golden drift (including
    a missing or quarantined-corrupt golden).

``--seed`` is the single reproducibility knob: it reaches every
stochastic layer — RSA key generation, LBR timing noise, corpus
sampling, fault-injection schedules — so two invocations with the same
seed print identical numbers.  Experiments keep their per-experiment
default seeds when the flag is omitted.

The experiment registry itself lives in
:mod:`repro.experiments.common`; each ``exp_*`` module registers its
own summary runner, and this module (like the campaign workers) only
consumes the registry.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Optional, Tuple

from .analysis import ascii_table, campaign_block
from .errors import CampaignError, DiskFaultError
from .experiments.common import (EXPERIMENTS, RunRequest,
                                 run_experiment)

#: compatibility view of the registry: name -> (artefact, runner),
#: runners taking ``(fast, seed)`` like the original in-module table.
_EXPERIMENTS: Dict[str, Tuple[str, object]] = {
    name: (spec.artefact,
           (lambda fast, seed, _name=name:
            run_experiment(_name, RunRequest(fast=fast, seed=seed))))
    for name, spec in EXPERIMENTS.items()
}


def _cmd_list() -> int:
    print(ascii_table(
        ("experiment", "paper artefact"),
        [(spec.name, spec.artefact)
         for spec in EXPERIMENTS.values()]))
    return 0


def _cmd_run(name: str, fast: bool, seed: Optional[int] = None,
             out: Optional[str] = None,
             backend: Optional[str] = None) -> int:
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {name!r}; known: {known}",
              file=sys.stderr)
        return 2
    spec = EXPERIMENTS[name]
    print(f"== {spec.artefact} ==")
    started = time.time()
    output = run_experiment(name, RunRequest(fast=fast, seed=seed,
                                             backend=backend))
    print(output)
    print(f"({time.time() - started:.1f}s)")
    if out is not None:
        from .storage import atomic_write_text
        path = atomic_write_text(f"{out}/{name}.txt", output + "\n")
        print(f"artifact written atomically to {path}")
    return 0


def _cmd_demo(seed: Optional[int] = None) -> int:
    for name in ("fig2", "fig4", "fig5"):
        _cmd_run(name, fast=True, seed=seed)
        print()
    return 0


def _campaign_rows(manifest):
    from .runner import JobStatus
    rows = []
    for record in manifest.records():
        result = (record.digest[:12]
                  if record.status is JobStatus.COMPLETED
                  else record.error)
        rows.append((record.job_id, record.status.value,
                     record.attempts, record.duration_s, result))
    return rows


#: chaos drills handled by the sharded service (the plain runner keeps
#: worker-level kill-worker)
_SHARD_CHAOS = ("kill-shard", "stall-shard")

#: chaos drills that strike the durable storage layer (work in both
#: single-host and sharded mode — the injector is inherited by forked
#: shard process groups)
_STORAGE_CHAOS = ("torn-write", "bit-flip", "enospc", "fsync-fail")

_SERVICE_EXIT = {"COMPLETED": 0, "FAILED": 1, "INTERRUPTED": 3,
                 "DEGRADED": 4}


def _render_service_summary(manifest) -> str:
    from .analysis import service_block
    from .service import merge_shards
    merged = merge_shards(manifest)
    tally: Dict[str, int] = {}
    for entry in merged["jobs"].values():
        status = str(entry["status"])
        tally[status] = tally.get(status, 0) + 1
    digest = (str(merged["digest"])
              if manifest.aggregate_path.exists() else "")
    return service_block(
        manifest.campaign_id, manifest.status,
        [(entry.shard_id, entry.status, len(entry.jobs),
          entry.strikes, entry.restarts, entry.origin)
         for entry in manifest.shards.values()],
        sorted(tally.items()),
        lost=sorted(manifest.lost.items()),
        digest=digest)


def _cmd_campaign_service(args, specs) -> int:
    from .service import ServiceChaos, run_service_campaign
    chaos = None
    if args.chaos in _SHARD_CHAOS:
        chaos = ServiceChaos(mode=args.chaos,
                             strikes=args.chaos_kills,
                             delay_s=args.chaos_delay,
                             seed=args.seed or 0,
                             target=args.chaos_target)
    elif args.chaos is not None:
        print("--chaos kill-worker drills the single-host runner; "
              "use kill-shard/stall-shard with --shards",
              file=sys.stderr)
        return 2
    options = {
        "workers_per_shard": args.jobs,
        "stall_timeout": args.stall_timeout,
        "lease_s": args.lease,
        "breaker_threshold": args.breaker_threshold,
        "max_reassignments": args.max_reassignments,
    }

    def on_event(shard_id: str, message: str) -> None:
        print(f"[{shard_id}] {message}")

    try:
        manifest = run_service_campaign(
            specs, args.runs_dir,
            campaign_id=args.resume or args.campaign_id,
            seed=args.seed, shards=max(args.shards, 1),
            resume=args.resume is not None, options=options,
            chaos=chaos,
            on_event=on_event if args.verbose else None)
    except DiskFaultError as error:
        print(f"storage fault: {error}", file=sys.stderr)
        print("campaign INTERRUPTED by storage fault; the journal "
              "recovers it on --resume", file=sys.stderr)
        return 3
    except CampaignError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(_render_service_summary(manifest))
    print(f"manifest: {manifest.path}")
    return _SERVICE_EXIT.get(manifest.status, 1)


def _cmd_campaign(args) -> int:
    from .runner import (ChaosMonkey, experiment_jobs, run_campaign)
    if args.chaos in _STORAGE_CHAOS:
        # Storage drills perturb the atomic writer itself; the
        # campaign-level chaos slot is then clear for the runner.
        from .faults import DiskFaultInjector
        from .storage import install_disk_faults
        install_disk_faults(DiskFaultInjector(
            mode=args.chaos, seed=args.seed or 0,
            strikes=args.chaos_kills,
            strike_after=args.chaos_write,
            match=args.chaos_match))
        args.chaos = None
    use_service = args.shards > 0 or args.chaos in _SHARD_CHAOS
    if args.resume is not None:
        from pathlib import Path

        from .service import SERVICE_MANIFEST_NAME
        if (Path(args.runs_dir) / args.resume /
                SERVICE_MANIFEST_NAME).exists():
            use_service = True
    specs = []
    if args.resume is None:
        only = (args.only.split(",") if args.only else None)
        try:
            specs = experiment_jobs(
                fast=args.fast, seed=args.seed, plan=args.plan,
                plan_factor=args.plan_factor, timeout_s=args.timeout,
                max_attempts=args.retries + 1, only=only)
        except CampaignError as error:
            print(str(error), file=sys.stderr)
            return 2
    if use_service:
        if args.vectorize > 1:
            print("--vectorize applies to the single-host runner only "
                  "(not --shards / service mode)", file=sys.stderr)
            return 2
        return _cmd_campaign_service(args, specs)
    chaos = None
    if args.chaos is not None:
        chaos = ChaosMonkey(mode=args.chaos, kills=args.chaos_kills,
                            delay_s=args.chaos_delay,
                            seed=args.seed or 0)

    def on_event(job_id: str, message: str) -> None:
        print(f"[{job_id}] {message}")

    try:
        manifest = run_campaign(
            specs, args.runs_dir,
            campaign_id=args.resume or args.campaign_id,
            seed=args.seed, resume=args.resume is not None,
            max_workers=args.jobs, stall_timeout=args.stall_timeout,
            chaos=chaos, vectorize=args.vectorize,
            on_event=on_event if args.verbose else None)
    except DiskFaultError as error:
        print(f"storage fault: {error}", file=sys.stderr)
        print("campaign INTERRUPTED by storage fault; the journal "
              "recovers it on --resume", file=sys.stderr)
        return 3
    except CampaignError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(campaign_block(manifest.campaign_id,
                         _campaign_rows(manifest),
                         interrupted=manifest.interrupted))
    print(f"manifest: {manifest.path}")
    if manifest.interrupted:
        return 3
    return 0 if manifest.all_completed() else 1


def _cmd_serve(args) -> int:
    import signal
    import threading

    from .service import ServiceServer

    def on_event(shard_id: str, message: str) -> None:
        print(f"[{shard_id}] {message}", flush=True)

    server = ServiceServer(
        args.runs_dir, host=args.host, port=args.port,
        queue_depth=args.queue_depth,
        options={"workers_per_shard": args.jobs},
        on_event=on_event if args.verbose else None)
    stop_requested = threading.Event()

    def _handle(signum, frame):    # noqa: ARG001 - signal signature
        stop_requested.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    server.start()
    print(f"serving on {server.url} (runs: {args.runs_dir}, "
          f"queue depth {args.queue_depth})", flush=True)
    while not stop_requested.wait(0.2):
        pass
    print("shutting down (running campaign checkpoints as "
          "resumable) ...", flush=True)
    server.stop()
    return 0


def _cmd_submit(args) -> int:
    from .analysis import service_block
    from .errors import AdmissionRejected, ServiceError
    from .service import ServiceClient
    client = ServiceClient(args.url, timeout=args.http_timeout)
    try:
        if args.resume is not None:
            campaign_id = args.resume
            client.resume(campaign_id)
            print(f"resume accepted: {campaign_id}")
        else:
            experiments: Dict[str, object] = {"fast": args.fast}
            if args.only:
                experiments["only"] = args.only.split(",")
            if args.seed is not None:
                experiments["seed"] = args.seed
            if args.plan:
                experiments["plan"] = args.plan
                experiments["plan_factor"] = args.plan_factor
            experiments["timeout_s"] = args.timeout
            experiments["max_attempts"] = args.retries + 1
            payload: Dict[str, object] = {
                "experiments": experiments,
                "shards": args.shards or 2,
            }
            if args.seed is not None:
                payload["seed"] = args.seed
            campaign_id = client.submit(payload)
            print(f"submitted: {campaign_id}")
        if args.no_wait:
            return 0
        status = client.wait(campaign_id,
                             timeout=args.wait_timeout or None)
        final = str(status.get("status"))
        digest = ""
        jobs_tally = [(name, int(count)) for name, count
                      in dict(status.get("jobs", {})).items()]
        try:
            results = client.results(campaign_id)
            digest = str(results.get("digest", ""))
            jobs_tally = {}
            for entry in dict(results.get("jobs", {})).values():
                name = str(entry["status"])
                jobs_tally[name] = jobs_tally.get(name, 0) + 1
            jobs_tally = sorted(jobs_tally.items())
        except ServiceError:
            pass                   # not terminal-with-aggregate yet
        shards = [(shard_id, str(info.get("status")),
                   int(info.get("jobs", 0)),
                   int(info.get("strikes", 0)),
                   int(info.get("restarts", 0)),
                   str(info.get("origin", "")))
                  for shard_id, info
                  in dict(status.get("shards", {})).items()]
        print(service_block(campaign_id, final, shards,
                            sorted(jobs_tally),
                            lost=sorted(dict(status.get(
                                "lost", {})).items()),
                            digest=digest))
        return _SERVICE_EXIT.get(final, 1)
    except AdmissionRejected as error:
        print(f"rejected (backpressure): {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 2


def _observe(name: str, fast: bool, seed: Optional[int],
             backend: Optional[str] = None):
    """Run ``name`` inside a tracing telemetry session; return the
    finalized sink (or None for an unknown experiment)."""
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {name!r}; known: {known}",
              file=sys.stderr)
        return None
    from . import telemetry
    with telemetry.session(trace=True) as sink:
        run_experiment(name, RunRequest(fast=fast, seed=seed,
                                        backend=backend))
    return sink


def _cmd_stats(name: str, fast: bool, seed: Optional[int] = None,
               out: Optional[str] = None, timings: bool = False,
               backend: Optional[str] = None) -> int:
    from . import telemetry
    sink = _observe(name, fast, seed, backend)
    if sink is None:
        return 2
    print(telemetry.render_stats(sink, timings=timings), end="")
    if out is not None:
        from .storage import atomic_write_text
        # The artifact always gets the deterministic rendering —
        # span timings are wall clock and would break byte-stability.
        path = atomic_write_text(out, telemetry.render_stats(sink))
        print(f"stats written atomically to {path}")
    return 0


def _cmd_trace(name: str, fast: bool, seed: Optional[int] = None,
               out: Optional[str] = None,
               backend: Optional[str] = None) -> int:
    from . import telemetry
    sink = _observe(name, fast, seed, backend)
    if sink is None:
        return 2
    rendered = telemetry.render_trace(sink)
    if out == "-":
        sys.stdout.write(rendered)
        return 0
    from .storage import atomic_write_text
    path = atomic_write_text(out if out is not None
                             else f"TRACE_{name}.jsonl", rendered)
    print(f"{len(sink.events)} event(s) traced")
    print(f"trace digest: {telemetry.trace_digest(sink)}")
    print(f"trace written atomically to {path}")
    return 0


#: envelope schema tag for the ``repro certify`` golden artifact
CERTIFY_GOLDEN_SCHEMA = "certify-report@1"


def _load_golden(tool: str, golden: str,
                 schema: Optional[str] = None) -> Optional[str]:
    """Load a committed golden report, or None when it cannot serve.

    A golden that is missing or corrupt is a *drift* condition — the
    caller exits 3 ("regenerate and commit"), never a stack trace and
    never exit 2 (which is reserved for real findings).  Corrupt
    goldens are quarantined aside (``<name>.corrupt``) so forensics
    survive and the next ``--out`` starts clean.  With ``schema`` the
    file must be an enveloped JSON document
    (:func:`repro.storage.parse_document`) whose payload carries the
    report text; without it the file is legacy plain text.
    """
    import os

    from .errors import ArtifactCorrupt
    from .storage import quarantine_file

    if not os.path.exists(golden):
        print(f"{tool}: golden report missing at {golden} "
              f"(re-generate with `repro {tool} --out {golden}` "
              f"and commit)", file=sys.stderr)
        return None
    if schema is None:
        try:
            with open(golden, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError as error:
            print(f"{tool}: cannot read golden report: {error}",
                  file=sys.stderr)
            return None
    from .storage import parse_document, read_json
    try:
        document = read_json(golden)
        payload, found_schema, _ = parse_document(document)
        if found_schema != schema:
            raise ArtifactCorrupt(
                f"golden schema {found_schema!r}, expected {schema!r}")
        report = payload.get("report") if isinstance(payload, dict) \
            else None
        if not isinstance(report, str):
            raise ArtifactCorrupt("golden payload lacks a report body")
        return report
    except (OSError, ValueError, ArtifactCorrupt) as error:
        destination = quarantine_file(golden)
        where = (f"; quarantined to {destination}"
                 if destination is not None else "")
        print(f"{tool}: golden report corrupt: {error}{where} "
              f"(re-generate with `repro {tool} --out {golden}` "
              f"and commit)", file=sys.stderr)
        return None


def _diff_golden(tool: str, rendered: str, golden: str,
                 expected: str) -> int:
    """Diff the fresh report against the golden text: 0 or 3."""
    if rendered == expected:
        print(f"golden report match: {golden}")
        return 0
    import difflib
    diff = difflib.unified_diff(
        expected.splitlines(keepends=True),
        rendered.splitlines(keepends=True),
        fromfile=golden, tofile="current")
    sys.stderr.writelines(diff)
    print(f"{tool}: report drifted from the golden copy "
          f"(re-generate with `repro {tool} --out` and commit "
          f"if the change is intended)", file=sys.stderr)
    return 3


def _cmd_lint(out: Optional[str] = None,
              golden: Optional[str] = None) -> int:
    from .analysis.lint import run_lint

    report = run_lint()
    rendered = report.render()
    print(rendered, end="")
    if out is not None:
        from .storage import atomic_write_text
        path = atomic_write_text(out, rendered)
        print(f"report written atomically to {path}")
    status = 0
    if not report.ok:
        print(f"lint: {len(report.new_findings)} unannotated "
              f"finding(s)", file=sys.stderr)
        status = 2
    if golden is not None:
        expected = _load_golden("lint", golden)
        if expected is None:
            return status or 3
        status = status or _diff_golden("lint", rendered, golden,
                                        expected)
    return status


def _cmd_portability(out: Optional[str] = None,
                     golden: Optional[str] = None) -> int:
    from .experiments.exp_portability import (render_matrix,
                                              run_portability)

    rendered = render_matrix(run_portability()) + "\n"
    print(rendered, end="")
    if out is not None:
        from .storage import atomic_write_text
        path = atomic_write_text(out, rendered)
        print(f"report written atomically to {path}")
    if golden is not None:
        expected = _load_golden("portability", golden)
        if expected is None:
            return 3
        return _diff_golden("portability", rendered, golden, expected)
    return 0


def _cmd_certify(out: Optional[str] = None,
                 golden: Optional[str] = None,
                 no_rewrite: bool = False) -> int:
    from .analysis.symbolic import run_certify

    report = run_certify(rewrite=not no_rewrite)
    rendered = report.render()
    print(rendered, end="")
    if out is not None:
        from .storage import write_envelope
        path = write_envelope(out, {"report": rendered},
                              CERTIFY_GOLDEN_SCHEMA)
        print(f"report written atomically to {path}")
    status = 0
    if not report.ok:
        print(f"certify: {len(report.failures)} problem(s)",
              file=sys.stderr)
        status = 2
    if golden is not None:
        expected = _load_golden("certify", golden,
                                schema=CERTIFY_GOLDEN_SCHEMA)
        if expected is None:
            return status or 3
        status = status or _diff_golden("certify", rendered, golden,
                                        expected)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NightVision (ISCA 2023) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment")
    run.add_argument("--fast", action="store_true",
                     help="reduced parameters for a quick look")
    run.add_argument("--seed", type=int, default=None,
                     help="seed every RNG (keys, noise, faults); "
                          "omit for the experiment's default")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="also write the findings to DIR/<name>.txt "
                          "via the atomic artifact writer")
    run.add_argument("--backend", default=None,
                     choices=["intel", "arm", "sodor", "orcs"],
                     help="run on a non-default BTB design family "
                          "(default: each experiment's own config)")

    demo = sub.add_parser("demo", help="30-second tour")
    demo.add_argument("--seed", type=int, default=None,
                      help="seed every RNG in the demo experiments")

    campaign = sub.add_parser(
        "campaign",
        help="run the experiment suite through the crash-tolerant "
             "runner (checkpointed, resumable)")
    campaign.add_argument("--fast", action="store_true",
                          help="reduced parameters per experiment")
    campaign.add_argument("--seed", type=int, default=None,
                          help="campaign-wide seed for every job")
    campaign.add_argument("--only", default=None, metavar="A,B,...",
                          help="comma-separated experiment subset")
    campaign.add_argument("--jobs", "-j", type=int, default=2,
                          help="parallel workers (default 2)")
    campaign.add_argument("--vectorize", type=int, default=1,
                          metavar="N",
                          help="batch N jobs per worker process, "
                               "amortizing fork + warm-up cost "
                               "(default 1 = one process per job; "
                               "single-host runner only, incompatible "
                               "with --chaos)")
    campaign.add_argument("--timeout", type=float, default=300.0,
                          metavar="S",
                          help="per-job wall-clock budget, seconds")
    campaign.add_argument("--stall-timeout", type=float, default=10.0,
                          metavar="S",
                          help="kill a worker whose heartbeat is older "
                               "than S seconds")
    campaign.add_argument("--retries", type=int, default=2,
                          help="retry budget per job on transient "
                               "failures (default 2)")
    campaign.add_argument("--plan", default="",
                          help="fault-plan preset every job carries "
                               "(clean, acceptance, noisy-neighbour, "
                               "hostile)")
    campaign.add_argument("--plan-factor", type=float, default=1.0,
                          help="scale factor applied to --plan rates")
    campaign.add_argument("--campaign-id", default=None,
                          help="explicit campaign id (default: "
                               "generated timestamp id)")
    campaign.add_argument("--runs-dir", default="runs",
                          help="checkpoint root (default: runs/)")
    campaign.add_argument("--resume", default=None, metavar="ID",
                          help="resume campaign ID: skip COMPLETED "
                               "jobs, re-run the rest")
    campaign.add_argument("--chaos", default=None,
                          choices=["kill-worker", "kill-shard",
                                   "stall-shard", "torn-write",
                                   "bit-flip", "enospc",
                                   "fsync-fail"],
                          help="failure drill: kill-worker SIGKILLs "
                               "random workers then interrupts (prove "
                               "--resume converges); kill-shard / "
                               "stall-shard strike whole shard process "
                               "groups (the service must self-heal); "
                               "torn-write / bit-flip / enospc / "
                               "fsync-fail strike manifest checkpoint "
                               "writes (the storage journal must "
                               "recover on resume)")
    campaign.add_argument("--chaos-kills", type=int, default=1,
                          help="workers/shards/writes to strike")
    campaign.add_argument("--chaos-write", type=int, default=0,
                          metavar="N",
                          help="storage chaos: strike the Nth "
                               "matching checkpoint write (default 0 "
                               "= seeded in [2, 6])")
    campaign.add_argument("--chaos-match", default="manifest.json",
                          metavar="GLOB",
                          help="storage chaos: file-name glob the "
                               "fault targets (default manifest.json)")
    campaign.add_argument("--chaos-delay", type=float, default=0.2,
                          metavar="S",
                          help="minimum campaign age before the first "
                               "chaos kill")
    campaign.add_argument("--chaos-target", default=None,
                          metavar="SHARD",
                          help="pin shard chaos to one shard id "
                               "(default: pseudo-random victim)")
    campaign.add_argument("--shards", type=int, default=0,
                          help="run through the sharded service "
                               "scheduler with N fault domains "
                               "(default 0 = single-host runner)")
    campaign.add_argument("--lease", type=float, default=5.0,
                          metavar="S",
                          help="shard heartbeat lease; a staler shard "
                               "is struck (service mode)")
    campaign.add_argument("--breaker-threshold", type=int, default=2,
                          metavar="N",
                          help="consecutive strikes before a shard is "
                               "quarantined (service mode)")
    campaign.add_argument("--max-reassignments", type=int, default=1,
                          metavar="N",
                          help="per-job reassignment budget after "
                               "quarantines; beyond it the job is "
                               "LOST and the campaign DEGRADED")
    campaign.add_argument("--verbose", "-v", action="store_true",
                          help="print per-job lifecycle events")

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: sharded scheduler behind a "
             "stdlib HTTP/JSON API with bounded-queue admission "
             "control")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (default 8642; 0 = ephemeral)")
    serve.add_argument("--runs-dir", default="runs",
                       help="checkpoint root (default: runs/)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="bounded submission queue; beyond it "
                            "submissions get HTTP 429 (default 8)")
    serve.add_argument("--jobs", "-j", type=int, default=2,
                       help="workers per shard (default 2)")
    serve.add_argument("--verbose", "-v", action="store_true",
                       help="print shard lifecycle events")

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running service and wait for "
             "its terminal state")
    submit.add_argument("--url", default="http://127.0.0.1:8642",
                        help="service base URL")
    submit.add_argument("--fast", action="store_true",
                        help="reduced parameters per experiment")
    submit.add_argument("--seed", type=int, default=None,
                        help="campaign-wide seed for every job")
    submit.add_argument("--only", default=None, metavar="A,B,...",
                        help="comma-separated experiment subset")
    submit.add_argument("--plan", default="",
                        help="fault-plan preset every job carries")
    submit.add_argument("--plan-factor", type=float, default=1.0,
                        help="scale factor applied to --plan rates")
    submit.add_argument("--timeout", type=float, default=300.0,
                        metavar="S",
                        help="per-job wall-clock budget, seconds")
    submit.add_argument("--retries", type=int, default=2,
                        help="retry budget per job (default 2)")
    submit.add_argument("--shards", type=int, default=2,
                        help="shard count for the submission")
    submit.add_argument("--resume", default=None, metavar="ID",
                        help="ask the service to resume campaign ID "
                             "instead of submitting new jobs")
    submit.add_argument("--no-wait", action="store_true",
                        help="return right after the 202 instead of "
                             "polling to a terminal state")
    submit.add_argument("--wait-timeout", type=float, default=0.0,
                        metavar="S",
                        help="give up waiting after S seconds "
                             "(default: wait forever)")
    submit.add_argument("--http-timeout", type=float, default=10.0,
                        metavar="S",
                        help="per-request HTTP timeout")

    bench = sub.add_parser(
        "bench",
        help="run the perf suite (fast path off vs on) and write "
             "BENCH_perf.json")
    bench.add_argument("--quick", action="store_true",
                       help="reduced iteration counts (CI smoke)")
    bench.add_argument("--out", default="BENCH_perf.json",
                       help="report path (default: BENCH_perf.json)")
    bench.add_argument("--profile", default=None, metavar="PATH",
                       help="also cProfile the suite and dump pstats "
                            "data to PATH")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff speedup ratios against a baseline "
                            "report; non-zero exit on regression")
    bench.add_argument("--threshold", type=float, default=None,
                       help="allowed fractional speedup regression "
                            "(default: 0.25)")

    stats = sub.add_parser(
        "stats",
        help="run one experiment under telemetry and print the "
             "deterministic counter report")
    stats.add_argument("experiment")
    stats.add_argument("--fast", action="store_true",
                       help="reduced parameters for a quick look")
    stats.add_argument("--seed", type=int, default=None,
                       help="seed every RNG; omit for the "
                            "experiment's default")
    stats.add_argument("--out", default=None, metavar="PATH",
                       help="also write the (deterministic) report "
                            "to PATH via the atomic artifact writer")
    stats.add_argument("--timings", action="store_true",
                       help="append wall-clock span timings to the "
                            "console output (never to --out)")
    stats.add_argument("--backend", default=None,
                       choices=["intel", "arm", "sodor", "orcs"],
                       help="run on a non-default BTB design family")

    trace = sub.add_parser(
        "trace",
        help="run one experiment under telemetry and write the "
             "canonical JSONL event trace (byte-stable per seed)")
    trace.add_argument("experiment")
    trace.add_argument("--fast", action="store_true",
                       help="reduced parameters for a quick look")
    trace.add_argument("--seed", type=int, default=None,
                       help="seed every RNG; omit for the "
                            "experiment's default")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="trace path (default: "
                            "TRACE_<experiment>.jsonl; '-' for "
                            "stdout)")
    trace.add_argument("--backend", default=None,
                       choices=["intel", "arm", "sodor", "orcs"],
                       help="run on a non-default BTB design family")

    lint = sub.add_parser(
        "lint",
        help="static leakage + BTB-aliasing audit of the victims "
             "library; non-zero exit on unannotated findings")
    lint.add_argument("--out", default=None, metavar="PATH",
                      help="also write the findings report to PATH "
                           "via the atomic artifact writer")
    lint.add_argument("--golden", default=None, metavar="PATH",
                      help="compare against a committed golden report; "
                           "non-zero exit on drift")

    portability = sub.add_parser(
        "portability",
        help="attack x BTB-design survival matrix across the "
             "intel/arm/sodor/orcs backends; byte-stable output, "
             "exit 3 on golden drift")
    portability.add_argument("--out", default=None, metavar="PATH",
                             help="also write the matrix report to "
                                  "PATH via the atomic artifact "
                                  "writer")
    portability.add_argument("--golden", default=None, metavar="PATH",
                             help="compare against a committed golden "
                                  "report; exit 3 on drift")

    certify = sub.add_parser(
        "certify",
        help="symbolic leakage certification: prove every victim "
             "PROVEN_LEAKY (with replayable witnesses) or "
             "PROVEN_SAFE, then validate the constant-time rewrite; "
             "exit 2 on new leaks, 3 on golden drift")
    certify.add_argument("--out", default=None, metavar="PATH",
                         help="also write the certification report "
                              "to PATH as an enveloped artifact")
    certify.add_argument("--golden", default=None, metavar="PATH",
                         help="compare against a committed golden "
                              "report; non-zero exit on drift")
    certify.add_argument("--no-rewrite", action="store_true",
                         help="skip the constant-time auto-rewrite "
                              "validation pass")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.fast, args.seed,
                        args.out, args.backend)
    if args.command == "demo":
        return _cmd_demo(args.seed)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "bench":
        from .perf.suite import DEFAULT_THRESHOLD
        from .perf.suite import main as bench_main
        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        forwarded += ["--out", args.out]
        if args.profile:
            forwarded += ["--profile", args.profile]
        if args.compare:
            forwarded += ["--compare", args.compare]
        threshold = (args.threshold if args.threshold is not None
                     else DEFAULT_THRESHOLD)
        forwarded += ["--threshold", str(threshold)]
        return bench_main(forwarded)
    if args.command == "stats":
        return _cmd_stats(args.experiment, args.fast, args.seed,
                          args.out, args.timings, args.backend)
    if args.command == "trace":
        return _cmd_trace(args.experiment, args.fast, args.seed,
                          args.out, args.backend)
    if args.command == "lint":
        return _cmd_lint(args.out, args.golden)
    if args.command == "portability":
        return _cmd_portability(args.out, args.golden)
    if args.command == "certify":
        return _cmd_certify(args.out, args.golden, args.no_rewrite)
    return 2                                      # pragma: no cover


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
