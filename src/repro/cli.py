"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible experiment with its paper artefact.
``run <experiment> [--fast] [--seed N]``
    Run one experiment harness and print its findings.
``demo``
    A 30-second tour: Takeaways 1 & 2 plus one NV-Core detection.

``--seed`` is the single reproducibility knob: it reaches every
stochastic layer — RSA key generation, LBR timing noise, corpus
sampling, fault-injection schedules — so two invocations with the same
seed print identical numbers.  Experiments keep their per-experiment
default seeds when the flag is omitted.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from .analysis import ascii_table, degradation_block, pct, series_block

#: experiment name -> (paper artefact, runner returning printable text).
#: Runners take ``(fast, seed)``; ``seed is None`` means "use the
#: experiment's own default".
_EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool, Optional[int]],
                                            str]]] = {}


def _register(name: str, artefact: str):
    def wrap(runner):
        _EXPERIMENTS[name] = (artefact, runner)
        return runner
    return wrap


def _seeded(seed: Optional[int], **kwargs):
    """kwargs plus ``seed=`` when the user supplied one."""
    if seed is not None:
        kwargs["seed"] = seed
    return kwargs


def _config_for(name: str, seed: Optional[int]):
    """A generation preset carrying the user's seed (None -> default
    config, letting the experiment pick its own preset)."""
    if seed is None:
        return None
    from .cpu.config import generation
    return generation(name, seed=seed)


@_register("fig2", "Figure 2 — non-branch BTB deallocation")
def _fig2(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure2
    result = run_figure2(config=_config_for("skylake", seed),
                         iterations=2 if fast else 10)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"boundary F2 < F1+2 reproduced: "
                 f"{result.findings['boundary_correct']}")
    return "\n".join(lines)


@_register("fig4", "Figure 4 — PW range-semantics lookup")
def _fig4(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure4
    result = run_figure4(config=_config_for("skylake", seed),
                         iterations=2 if fast else 10)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"boundary F1 < F2+2 reproduced: "
                 f"{result.findings['boundary_correct']}")
    return "\n".join(lines)


@_register("fig5", "Figure 5 — overlap scenarios")
def _fig5(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure5
    result = run_figure5(config=_config_for("coffeelake", seed))
    lines = [f"{name}: detected={hit}"
             for name, hit in result.detections.items()]
    lines.append(f"all correct: {result.all_correct}")
    return "\n".join(lines)


@_register("fig7", "Figure 7 — chained PWs")
def _fig7(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure7
    result = run_figure7(config=_config_for("coffeelake", seed))
    return (f"localization correct: {result.localization_correct}\n"
            f"victim runs: chained={result.chained_rounds} vs "
            f"single-PW={result.single_pw_rounds}")


@_register("gcd-leak", "§7.2 — GCD secret-branch leak (use case 1)")
def _gcd(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_gcd_leak
    result = run_gcd_leak(runs=5 if fast else 100,
                          **_seeded(seed))
    return (f"{result.label}: accuracy {pct(result.accuracy)} over "
            f"{result.total_iterations} iterations "
            f"({result.runs} runs; paper: 99.3%)")


@_register("bncmp-leak", "§7.2 — bn_cmp leak (use case 1)")
def _bncmp(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_bncmp_leak
    result = run_bncmp_leak(runs=10 if fast else 100,
                            **_seeded(seed))
    return (f"{result.label}: accuracy {pct(result.accuracy)} "
            f"({result.runs} runs; paper: 100%)")


@_register("defenses", "Figure 8 / §5 — software defense grid")
def _defenses(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_defense_grid
    grid = run_defense_grid(runs=3 if fast else 20,
                            **_seeded(seed))
    return ascii_table(
        ("defense", "accuracy", "verdict"),
        [(name, pct(r.accuracy),
          "LEAKS" if r.accuracy > 0.9 else "holds")
         for name, r in grid.items()])


@_register("mitigations", "§8.2 — hardware mitigations + oblivious")
def _mitigations(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_hardware_grid, run_oblivious
    grid = run_hardware_grid(runs=3 if fast else 15,
                             **_seeded(seed))
    rows = [(name, pct(r.accuracy),
             "LEAKS" if r.accuracy > 0.9 else "holds")
            for name, r in grid.items()]
    oblivious = run_oblivious(keys=3 if fast else 8,
                              **_seeded(seed))
    rows.append(("data-oblivious gcd",
                 f"info rate {pct(oblivious.information_rate)}",
                 "holds" if oblivious.information_rate == 0
                 else "LEAKS"))
    return ascii_table(("mitigation", "accuracy", "verdict"), rows)


@_register("traversal", "Figure 10 — PW traversal run counts")
def _traversal(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure10
    result = run_figure10(
        _config_for("coffeelake", seed),
        inputs={"ta": 6, "tb": 4} if fast else {"ta": 12, "tb": 8})
    return (f"steps={result.steps}; 128/N budget="
            f"{result.expected_sweep_runs}; paper strategy "
            f"{result.paper_runs} runs @ {pct(result.paper_accuracy)};"
            f" adaptive {result.adaptive_runs} runs @ "
            f"{pct(result.adaptive_accuracy)}")


@_register("fingerprint", "Figure 12 — function fingerprinting")
def _fingerprint(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_figure12
    extra = {} if seed is None else {"corpus_seed": seed}
    result = run_figure12(corpus_size=200 if fast else 2000, **extra)
    return "\n".join([
        f"corpus: {result.corpus_size} functions",
        f"GCD self-sim {pct(result.gcd.self_similarity)}, "
        f"identified: {result.gcd_identified}",
        f"bn_cmp self-sim {pct(result.bn_cmp.self_similarity)}, "
        f"identified: {result.bncmp_identified}",
    ])


@_register("versions", "Figure 13 — versions × opt levels")
def _versions(fast: bool, seed: Optional[int]) -> str:
    from .experiments import (run_figure13_optlevels,
                              run_figure13_versions, version_groups)
    left = run_figure13_versions()
    right = run_figure13_optlevels()
    return (f"versions: within-group min "
            f"{left.diagonal_min():.2f} vs cross-group max "
            f"{left.off_diagonal_max(version_groups()):.2f}\n"
            f"opt levels: diagonal min {right.diagonal_min():.2f} vs "
            f"off-diagonal max {right.off_diagonal_max():.2f}")


@_register("generations", "§2.3 footnote — tag truncation sweep")
def _generations(fast: bool, seed: Optional[int]) -> str:
    from .experiments import run_generation_sweep
    result = run_generation_sweep()
    return ascii_table(
        ("generation", "tag bits", "@8GiB", "@16GiB"),
        [(name, keep, a, b)
         for name, (keep, a, b) in result.table.items()])


@_register("robustness", "ablation — accuracy vs injected fault rate")
def _robustness(fast: bool, seed: Optional[int]) -> str:
    from .experiments import (run_fingerprint_robustness,
                              run_leak_robustness)
    leak = run_leak_robustness(
        runs=3 if fast else 8,
        factors=(0.0, 1.0) if fast else (0.0, 1.0, 2.0, 3.0),
        **_seeded(seed))
    blocks = [degradation_block(
        f"{leak.label} (plan: {leak.plan_name})",
        leak.factors, leak.curves())]
    blocks.append(f"resilient floor {pct(leak.resilient_floor)} vs "
                  f"naive floor {pct(leak.naive_floor)}")
    if not fast:
        fingerprint = run_fingerprint_robustness(**_seeded(seed))
        blocks.append(degradation_block(
            f"{fingerprint.label} (plan: {fingerprint.plan_name})",
            fingerprint.factors, fingerprint.curves()))
        failures = sum(p.failed for p in fingerprint.naive)
        blocks.append(f"naive extractions failed outright: "
                      f"{failures}/{len(fingerprint.naive)}")
    return "\n".join(blocks)


def _cmd_list() -> int:
    print(ascii_table(
        ("experiment", "paper artefact"),
        [(name, artefact)
         for name, (artefact, _) in _EXPERIMENTS.items()]))
    return 0


def _cmd_run(name: str, fast: bool,
             seed: Optional[int] = None) -> int:
    if name not in _EXPERIMENTS:
        known = ", ".join(_EXPERIMENTS)
        print(f"unknown experiment {name!r}; known: {known}",
              file=sys.stderr)
        return 2
    artefact, runner = _EXPERIMENTS[name]
    print(f"== {artefact} ==")
    started = time.time()
    print(runner(fast, seed))
    print(f"({time.time() - started:.1f}s)")
    return 0


def _cmd_demo(seed: Optional[int] = None) -> int:
    for name in ("fig2", "fig4", "fig5"):
        _cmd_run(name, fast=True, seed=seed)
        print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NightVision (ISCA 2023) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment")
    run.add_argument("--fast", action="store_true",
                     help="reduced parameters for a quick look")
    run.add_argument("--seed", type=int, default=None,
                     help="seed every RNG (keys, noise, faults); "
                          "omit for the experiment's default")
    demo = sub.add_parser("demo", help="30-second tour")
    demo.add_argument("--seed", type=int, default=None,
                      help="seed every RNG in the demo experiments")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.fast, args.seed)
    if args.command == "demo":
        return _cmd_demo(args.seed)
    return 2                                      # pragma: no cover


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
