"""Function fingerprinting on extracted PC traces (paper §6.4, use
case 2): call/ret slicing, position-independent normalization,
set-intersection similarity, a synthetic reference corpus, the
measurement model shared with NV-S, and the §8.3 sequence-alignment
matcher."""

from .corpus import (
    CorpusFunction,
    DEFAULT_CORPUS_SIZE,
    generate_corpus,
)
from .measurement import (
    apply_measurement_noise,
    measured_trace,
    retire_unit_starts,
)
from .sequence import (
    downsample,
    local_alignment_score,
    sequence_similarity,
)
from .similarity import (
    FingerprintIndex,
    MatchResult,
    rank_victims,
    set_similarity,
)
from .slicing import (
    FunctionTrace,
    JUMP_THRESHOLD,
    function_traces_of_length,
    slice_trace,
)

__all__ = [
    "CorpusFunction",
    "DEFAULT_CORPUS_SIZE",
    "FingerprintIndex",
    "FunctionTrace",
    "JUMP_THRESHOLD",
    "MatchResult",
    "apply_measurement_noise",
    "downsample",
    "function_traces_of_length",
    "generate_corpus",
    "local_alignment_score",
    "measured_trace",
    "rank_victims",
    "retire_unit_starts",
    "sequence_similarity",
    "set_similarity",
    "slice_trace",
]
