"""Trace slicing: dynamic PC trace -> per-invocation function traces.

Implements §6.4 step 1: the extracted PC trace is partitioned at
call/ret boundaries, using only information the attacker has —

* a jump between consecutive measured PCs of more than 16 bytes marks
  a suspected control transfer;
* a suspected ``call``/``ret`` is confirmed by its data-page access
  (the stack push/pop), observed through the controlled channel;
* a confirmed transfer whose target lands just past a *pending* call
  site (2–10 bytes after it — a plausible call-instruction length) is
  the matching ``ret``; otherwise it is a new ``call``.

Each invocation's trace holds the PCs executed at its own nesting
level (a nested call contributes the call-site PC to the parent and
opens its own trace), then gets normalized position-independent by
subtracting its entry PC — exactly Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: PC delta above which a transition is a suspected control transfer
JUMP_THRESHOLD = 16
#: plausible call-instruction lengths: ret targets call_pc + [2, 10]
MIN_CALL_LENGTH = 2
MAX_CALL_LENGTH = 10


@dataclass
class FunctionTrace:
    """One sliced function invocation."""

    #: first measured PC of the invocation (the call target)
    entry: int
    #: measured PCs at this invocation's nesting level, in order
    pcs: List[int] = field(default_factory=list)
    #: nesting depth at which the invocation ran (0 = top level)
    depth: int = 0

    def normalized(self) -> List[int]:
        """Position-independent PCs (entry subtracted)."""
        return [pc - self.entry for pc in self.pcs]

    def normalized_set(self) -> frozenset:
        return frozenset(self.normalized())

    def __len__(self) -> int:
        return len(self.pcs)


def slice_trace(pcs: Sequence[int],
                data_access: Optional[Sequence[bool]] = None,
                aligned_entries: int = 16) -> List[FunctionTrace]:
    """Partition a measured dynamic PC trace into function traces.

    ``data_access[i]`` says whether step ``i`` touched a data page
    (from the accessed-bit controlled channel); when ``None`` every
    suspected transfer is treated as confirmed (lower fidelity).

    ``aligned_entries`` exploits the compiler convention that function
    entries are 16-byte aligned: a far transfer that is not a return
    only opens a new frame when its target is aligned (intra-function
    loop jumps rarely are).  Pass 0 to disable the heuristic.
    """
    if data_access is None:
        data_access = [True] * len(pcs)
    traces: List[FunctionTrace] = []
    if not pcs:
        return traces
    root = FunctionTrace(entry=pcs[0], depth=0)
    traces.append(root)
    #: (call_pc, open trace) for every frame on the inferred stack
    stack: List[Tuple[int, FunctionTrace]] = [(-1, root)]

    for index, pc in enumerate(pcs):
        current = stack[-1][1]
        if not current.pcs:
            current.pcs.append(pc)
            continue
        previous = current.pcs[-1]
        delta = pc - previous
        is_far = delta > JUMP_THRESHOLD or delta < 0
        confirmed = is_far and data_access[min(index, len(data_access) - 1)]
        if confirmed and _matches_return(stack, pc):
            # ret: unwind to the matching frame
            while len(stack) > 1:
                frame_call_pc = stack[-1][0]
                stack.pop()
                if _is_return_to(frame_call_pc, pc):
                    break
            stack[-1][1].pcs.append(pc)
        elif confirmed and (aligned_entries <= 1
                            or pc % aligned_entries == 0):
            # call: previous PC was the call site; open a new frame
            callee = FunctionTrace(entry=pc, depth=len(stack))
            callee.pcs.append(pc)
            traces.append(callee)
            stack.append((previous, callee))
        else:
            current.pcs.append(pc)
    return traces


def _is_return_to(call_pc: int, target: int) -> bool:
    return MIN_CALL_LENGTH <= target - call_pc <= MAX_CALL_LENGTH


def _matches_return(stack: List[Tuple[int, FunctionTrace]],
                    target: int) -> bool:
    """Does ``target`` look like a return to any pending call site?"""
    for call_pc, _ in reversed(stack[1:]):
        if _is_return_to(call_pc, target):
            return True
    return False


def function_traces_of_length(traces: Sequence[FunctionTrace],
                              minimum: int = 4) -> List[FunctionTrace]:
    """Filter out stub invocations too short to fingerprint (§8.1:
    the function must produce enough entropy)."""
    return [trace for trace in traces if len(trace) >= minimum]
