"""Fingerprint similarity (§6.4 step 2).

The paper's metric: convert the victim's function-level dynamic trace
``t`` to a set ``S`` of position-independent PCs, keep a reference set
``S*`` of static PCs per known function, and score

    similarity = |S ∩ S*| / |S|.

Variable-length encoding does the heavy lifting: instruction lengths
depend on opcodes and addressing modes, so the set of relative PC
values is a high-entropy signature of the instruction sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .slicing import FunctionTrace


def set_similarity(victim: Iterable[int],
                   reference: Iterable[int]) -> float:
    """``|S ∩ S*| / |S|`` over position-independent PC sets."""
    victim_set = frozenset(victim)
    if not victim_set:
        return 0.0
    reference_set = frozenset(reference)
    return len(victim_set & reference_set) / len(victim_set)


@dataclass(frozen=True)
class MatchResult:
    """Ranked similarity of one victim trace against one reference."""

    reference: str
    similarity: float


class FingerprintIndex:
    """Reference-function database (the attacker's offline corpus).

    References are *static* relative-PC sets — the paper deliberately
    avoids enumerating dynamic paths of reference functions (§6.4).
    """

    def __init__(self) -> None:
        self._references: Dict[str, frozenset] = {}

    def add_reference(self, name: str,
                      static_pcs: Iterable[int]) -> None:
        """Register reference function ``name`` with its static PCs
        (already relative to the function entry)."""
        self._references[name] = frozenset(static_pcs)

    def add_compiled_function(self, name: str, compiled,
                              function: str) -> None:
        """Convenience: pull a function's static PCs out of a
        :class:`CompiledModule` and normalize to its entry."""
        info = compiled.info(function)
        entry = info.entry
        self.add_reference(name, (
            pc - entry for pc in compiled.static_pcs(function)
            if pc >= entry
        ))

    def __len__(self) -> int:
        return len(self._references)

    def references(self) -> List[str]:
        return sorted(self._references)

    # ------------------------------------------------------------------
    def score(self, victim: FunctionTrace,
              reference: str) -> float:
        return set_similarity(victim.normalized(),
                              self._references[reference])

    def match(self, victim: FunctionTrace,
              top: Optional[int] = None) -> List[MatchResult]:
        """Similarities of ``victim`` against every reference,
        best first."""
        results = [
            MatchResult(name, set_similarity(victim.normalized(), pcs))
            for name, pcs in self._references.items()
        ]
        results.sort(key=lambda r: r.similarity, reverse=True)
        return results[:top] if top is not None else results

    def best_match(self, victim: FunctionTrace) -> MatchResult:
        matches = self.match(victim, top=1)
        if not matches:
            raise ValueError("empty fingerprint index")
        return matches[0]


def rank_victims(victims: Sequence[Tuple[str, FunctionTrace]],
                 reference_pcs: Iterable[int],
                 top: Optional[int] = None
                 ) -> List[Tuple[str, float]]:
    """Score many victim traces against ONE reference — the Fig. 12
    view (which victim looks most like GCD / bn_cmp?)."""
    reference_set = frozenset(reference_pcs)
    scored = [
        (name, set_similarity(trace.normalized(), reference_set))
        for name, trace in victims
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored[:top] if top is not None else scored
