"""Sequence-based fingerprint matching (§8.3, implemented future work).

The paper's set-intersection metric discards ordering.  §8.3 sketches
a richer matcher that treats the dynamic PC sequence like a genome and
aligns it against reference sequences, tolerating measurement error
the way sequence alignment tolerates mutations.  This module
implements that sketch with Smith–Waterman local alignment over
*normalized PC* tokens:

* match reward for identical relative PCs;
* near-match reward for PCs within a small tolerance (misresolved
  bases);
* gap penalties for dropped/extra measurements.

Reference sequences are the function's static PCs in address order —
a cheap stand-in for "some execution order" that already captures far
more structure than a set.  The score is normalized by the best
possible self-alignment of the victim sequence, so results live in
``[0, 1]`` and are comparable with the set metric.
"""

from __future__ import annotations

from typing import List, Sequence

MATCH_SCORE = 2.0
NEAR_MATCH_SCORE = 1.0
MISMATCH_PENALTY = -1.0
GAP_PENALTY = -0.75
NEAR_TOLERANCE = 3


def _token_score(a: int, b: int) -> float:
    if a == b:
        return MATCH_SCORE
    if abs(a - b) <= NEAR_TOLERANCE:
        return NEAR_MATCH_SCORE
    return MISMATCH_PENALTY


def local_alignment_score(victim: Sequence[int],
                          reference: Sequence[int]) -> float:
    """Raw Smith–Waterman local alignment score."""
    if not victim or not reference:
        return 0.0
    previous = [0.0] * (len(reference) + 1)
    best = 0.0
    for v_token in victim:
        current = [0.0] * (len(reference) + 1)
        for column in range(1, len(reference) + 1):
            diagonal = previous[column - 1] + _token_score(
                v_token, reference[column - 1])
            up = previous[column] + GAP_PENALTY
            left = current[column - 1] + GAP_PENALTY
            score = max(0.0, diagonal, up, left)
            current[column] = score
            if score > best:
                best = score
        previous = current
    return best


def sequence_similarity(victim: Sequence[int],
                        reference: Sequence[int]) -> float:
    """Alignment score normalized to ``[0, 1]`` by the victim's
    perfect self-alignment (``len(victim) * MATCH_SCORE``)."""
    if not victim:
        return 0.0
    ceiling = len(victim) * MATCH_SCORE
    return min(1.0, local_alignment_score(victim, reference) / ceiling)


def downsample(sequence: Sequence[int], limit: int) -> List[int]:
    """Cap alignment cost on long traces by uniform subsampling."""
    if len(sequence) <= limit:
        return list(sequence)
    step = len(sequence) / limit
    return [sequence[int(index * step)] for index in range(limit)]
