"""Measurement model: ground-truth dynamic traces -> what NV-S sees.

The two reference victims (GCD, bn_cmp) are extracted with the real
NV-S machinery end-to-end.  Corpus-scale victims (thousands of other
functions, standing in for the paper's 175 K) would cost hours of
full extraction each, so their *measured* traces are derived by
applying the same measurement artifacts to cheap ground-truth traces:

* **macro-fusion** — a fusible ALU followed adjacently by a Jcc
  retires as one unit, so the Jcc's PC is never measured (§7.3; this
  is what caps self-similarity at 75–90 %);
* **residual measurement error** — a small per-step error rate models
  the unresolved/misresolved steps real extraction leaves behind.

The fusion model reuses :func:`repro.cpu.fusion.can_fuse`, i.e. it is
*the same rule the cycle-accurate core applies*, so derived traces and
NV-S-extracted traces agree (tested in the integration suite).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..cpu.fusion import can_fuse
from ..isa.instructions import Instruction


def retire_unit_starts(trace: Sequence[int],
                       instructions: Dict[int, Instruction]
                       ) -> List[int]:
    """Collapse an instruction-level dynamic trace into retire-unit
    leading PCs under the macro-fusion rule."""
    units: List[int] = []
    index = 0
    while index < len(trace):
        pc = trace[index]
        units.append(pc)
        instruction = instructions.get(pc)
        if instruction is not None and index + 1 < len(trace):
            next_pc = trace[index + 1]
            follower = instructions.get(next_pc)
            if (follower is not None
                    and next_pc == pc + instruction.length
                    and can_fuse(instruction, follower)):
                index += 2      # fused pair: one measured unit
                continue
        index += 1
    return units


def apply_measurement_noise(units: Sequence[int], *,
                            error_rate: float = 0.0,
                            drop_rate: float = 0.0,
                            seed: int = 0) -> List[int]:
    """Inject residual extraction error: each unit independently gets
    dropped (unresolved step) or perturbed by ±1–3 bytes
    (misresolved base)."""
    if error_rate <= 0.0 and drop_rate <= 0.0:
        return list(units)
    rng = random.Random(seed)
    out: List[int] = []
    for pc in units:
        roll = rng.random()
        if roll < drop_rate:
            continue
        if roll < drop_rate + error_rate:
            out.append(pc + rng.choice((-3, -2, -1, 1, 2, 3)))
        else:
            out.append(pc)
    return out


def measured_trace(trace: Sequence[int],
                   instructions: Dict[int, Instruction], *,
                   error_rate: float = 0.005,
                   drop_rate: float = 0.005,
                   seed: int = 0) -> List[int]:
    """Full corpus measurement model: fusion + residual noise."""
    units = retire_unit_starts(trace, instructions)
    return apply_measurement_noise(units, error_rate=error_rate,
                                   drop_rate=drop_rate, seed=seed)
