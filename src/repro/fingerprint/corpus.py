"""Synthetic function corpus for the fingerprint evaluation (§7.3).

The paper measures 175,168 functions pulled from open-source SGX
projects.  We synthesize a corpus instead (no network, and full
extraction of every function is out of a laptop's budget — see
DESIGN.md §4): a seeded generator emits random-but-terminating DSL
functions with realistic structure (arithmetic, bounded loops,
branches, the occasional helper call), compiles them at randomly
chosen optimization levels, and produces

* the *static* relative-PC set (what a reference database holds), and
* a *measured* dynamic trace (ground truth + the same fusion/noise
  measurement model applied to the real victims' corpus entries).

Corpus size defaults to a laptop-friendly value; the benchmarks read
``NV_CORPUS_SIZE`` to scale it up.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.interp import run_function
from ..cpu.state import MachineState
from ..lang import CompileOptions, Compiler
from ..lang import ast as A
from ..memory.memory import VirtualMemory
from .measurement import measured_trace

#: default corpus size (paper: 175,168)
DEFAULT_CORPUS_SIZE = int(os.environ.get("NV_CORPUS_SIZE", "2000"))

_VAR_NAMES = ("a", "b", "c", "x", "y", "z", "t", "u", "v", "w")
_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass
class CorpusFunction:
    """One corpus entry, fingerprint-ready."""

    name: str
    #: static instruction addresses relative to the function entry
    static_pcs: Tuple[int, ...]
    #: measured dynamic trace, relative to the entry
    measured: Tuple[int, ...]
    opt_level: int

    @property
    def measured_set(self) -> frozenset:
        return frozenset(self.measured)


class _FunctionSynthesizer:
    """Generates one random, guaranteed-terminating DSL function."""

    def __init__(self, rng: random.Random, name: str):
        self.rng = rng
        self.name = name
        self.vars: List[str] = []
        #: loop counters: readable but never assignment targets
        #: (random writes could make a loop non-terminating)
        self.protected: set = set()
        self._loop_counter = 0

    def synthesize(self) -> A.Function:
        params = list(_VAR_NAMES[:self.rng.randint(1, 3)])
        self.vars = list(params)
        body: List[A.Stmt] = []
        for _ in range(self.rng.randint(3, 9)):
            body.append(self._statement(depth=0))
        body.append(A.Return(self._expr(depth=0)))
        return A.Function(self.name, tuple(params), tuple(body))

    # ------------------------------------------------------------------
    def _fresh_var(self) -> str:
        for name in _VAR_NAMES:
            if name not in self.vars:
                self.vars.append(name)
                return name
        writable = [name for name in self.vars
                    if name not in self.protected]
        return self.rng.choice(writable) if writable else self.vars[0]

    def _expr(self, depth: int) -> A.Expr:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            if self.vars and self.rng.random() < 0.7:
                return A.Var(self.rng.choice(self.vars))
            return A.Const(self.rng.randint(0, 255))
        if roll < 0.85:
            op = self.rng.choice(_BIN_OPS)
            return A.BinOp(op, self._expr(depth + 1),
                           self._expr(depth + 1))
        if roll < 0.93:
            shift = self.rng.randint(1, 7)
            op = self.rng.choice(("<<", ">>"))
            return A.BinOp(op, self._expr(depth + 1), A.Const(shift))
        return A.Cmp(self.rng.choice(_CMP_OPS),
                     self._expr(depth + 1), self._expr(depth + 1))

    def _statement(self, depth: int) -> A.Stmt:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.55:
            writable = [name for name in self.vars
                        if name not in self.protected]
            target = (self._fresh_var()
                      if self.rng.random() < 0.4 or not writable
                      else self.rng.choice(writable))
            return A.Assign(target, self._expr(0))
        if roll < 0.8:
            cond = A.Cmp(self.rng.choice(_CMP_OPS),
                         self._expr(1), self._expr(1))
            then = tuple(self._statement(depth + 1)
                         for _ in range(self.rng.randint(1, 3)))
            orelse: Tuple[A.Stmt, ...] = ()
            if self.rng.random() < 0.6:
                orelse = tuple(self._statement(depth + 1)
                               for _ in range(self.rng.randint(1, 3)))
            return A.If(cond, then, orelse)
        # bounded counting loop (guaranteed termination)
        self._loop_counter += 1
        counter = f"i{self._loop_counter}"
        self.vars.append(counter)
        self.protected.add(counter)
        trips = self.rng.randint(2, 6)
        body = tuple(
            [self._statement(depth + 1)
             for _ in range(self.rng.randint(1, 3))]
            + [A.Assign(counter, A.BinOp("+", A.Var(counter),
                                         A.Const(1)))]
        )
        return A.If(A.Cmp("==", A.Const(0), A.Const(0)), (
            A.Assign(counter, A.Const(0)),
            A.While(A.Cmp("<", A.Var(counter), A.Const(trips)), body),
        ))


def generate_corpus(size: int = DEFAULT_CORPUS_SIZE, *,
                    seed: int = 2023,
                    batch: int = 200,
                    error_rate: float = 0.005,
                    drop_rate: float = 0.005,
                    max_instructions: int = 20_000
                    ) -> List[CorpusFunction]:
    """Generate, compile and trace ``size`` corpus functions."""
    rng = random.Random(seed)
    out: List[CorpusFunction] = []
    serial = 0
    while len(out) < size:
        count = min(batch, size - len(out))
        functions = []
        for _ in range(count):
            serial += 1
            functions.append(
                _FunctionSynthesizer(rng, f"corpus_{serial}")
                .synthesize())
        opt_level = rng.choice((0, 2, 3))
        compiled = Compiler(CompileOptions(opt_level=opt_level)) \
            .compile(A.Module(tuple(functions)))
        memory = VirtualMemory()
        compiled.program.load_into(memory)
        for function in functions:
            info = compiled.info(function.name)
            state = MachineState(memory)
            state.setup_stack(0x7FFF_0000_0000)
            args = [rng.randint(1, 9)
                    for _ in function.params]
            result = run_function(
                state, info.entry, args=args,
                max_instructions=max_instructions)
            measured = measured_trace(
                result.trace, compiled.program.instructions,
                error_rate=error_rate, drop_rate=drop_rate,
                seed=rng.randrange(1 << 30))
            out.append(CorpusFunction(
                name=function.name,
                static_pcs=tuple(
                    pc - info.entry
                    for pc in compiled.static_pcs(function.name)
                    if pc >= info.entry),
                measured=tuple(pc - info.entry for pc in measured),
                opt_level=opt_level,
            ))
    return out
