"""OS model: processes, a kernel with cooperative and preemptive
scheduling, syscalls, and supervisor facilities (single-stepping,
page-fault hooks) used by the privileged attacker."""

from .kernel import Kernel
from .process import DEFAULT_STACK_TOP, Process, ProcessStatus
from .syscalls import (
    DEFAULT_SYSCALLS,
    SYS_EXIT,
    SYS_GETPID,
    SYS_SCHED_YIELD,
)

__all__ = [
    "DEFAULT_STACK_TOP",
    "DEFAULT_SYSCALLS",
    "Kernel",
    "Process",
    "ProcessStatus",
    "SYS_EXIT",
    "SYS_GETPID",
    "SYS_SCHED_YIELD",
]
