"""Processes: one address space + architectural state + scheduling info.

Micro-architectural state (BTB/LBR/cycles) deliberately does *not* live
here — it belongs to the :class:`~repro.cpu.core.Core` and is shared by
every process scheduled onto it.  That is the channel.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from ..cpu.state import MachineState
from ..isa.assembler import AssembledProgram
from ..memory.memory import VirtualMemory

_pids = itertools.count(1)

#: default stack top for new processes
DEFAULT_STACK_TOP = 0x7FFF_FFF0_0000


class ProcessStatus(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class Process:
    """One schedulable entity."""

    def __init__(self, name: str = "",
                 memory: Optional[VirtualMemory] = None,
                 entry: int = 0, *,
                 domain: Optional[int] = None,
                 stack_top: int = DEFAULT_STACK_TOP):
        self.pid = next(_pids)
        self.name = name or f"proc{self.pid}"
        self.memory = memory if memory is not None else VirtualMemory()
        self.state = MachineState(self.memory, rip=entry)
        self.state.setup_stack(stack_top)
        self.status = ProcessStatus.READY
        #: security-domain id for the BTB-partitioning mitigation; by
        #: default each process is its own domain
        self.domain = domain if domain is not None else self.pid
        self.exit_code: Optional[int] = None
        #: cumulative retired instruction count (for accounting tests)
        self.retired = 0

    @classmethod
    def from_program(cls, program: AssembledProgram, name: str = "",
                     perms: str = "rx", **kwargs) -> "Process":
        """Create a process with ``program`` loaded and RIP at its entry."""
        memory = VirtualMemory()
        program.load_into(memory, perms)
        return cls(name=name, memory=memory, entry=program.entry, **kwargs)

    @property
    def alive(self) -> bool:
        return self.status is not ProcessStatus.EXITED

    def exit(self, code: int = 0) -> None:
        self.status = ProcessStatus.EXITED
        self.exit_code = code

    def __repr__(self) -> str:
        return (f"Process(pid={self.pid}, name={self.name!r}, "
                f"status={self.status.value}, rip={self.state.rip:#x})")
