"""Kernel model: scheduling, syscalls, context switches, page faults.

Two usage styles:

* **Cooperative alternation** (the user-level attacker, §4.2/§7.2):
  :meth:`run_until_yield` runs a process until it calls
  ``sched_yield`` (or exits).  The NV-U experiments ping-pong between
  victim and attacker exactly the way the paper's proof-of-concept
  does.

* **Supervisor control** (§4.3): :meth:`single_step` delivers a timer
  interrupt after exactly one retire unit — the SGX-Step model — and
  the page-fault hook gives the controlled-channel attack its
  page-granular view.

Context switches call :meth:`Core.context_switch`, which applies
whatever mitigation the :class:`CpuGeneration` enables (IBRS/IBPB
indirect-only flush, full-flush, or BTB domain partitioning).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cpu.core import Core, RunResult, StopReason
from ..errors import NoRunnableProcess, PageFault, SystemError_
from .process import Process, ProcessStatus
from .syscalls import DEFAULT_SYSCALLS, SyscallHandler

#: fault_handler(kernel, process, fault) -> True if handled (retry), or
#: False to propagate the fault as an error.
FaultHandler = Callable[["Kernel", Process, PageFault], bool]


class Kernel:
    """Owns one core and a set of processes."""

    def __init__(self, core: Optional[Core] = None):
        self.core = core if core is not None else Core()
        self.processes: List[Process] = []
        self.current: Optional[Process] = None
        self.syscalls: Dict[int, SyscallHandler] = dict(DEFAULT_SYSCALLS)
        self.fault_handler: Optional[FaultHandler] = None
        #: optional :class:`repro.faults.FaultInjector`: consulted at
        #: slice boundaries (spurious BTB evictions, involuntary
        #: preemption) and by the SGX-Step model (zero/multi-step)
        self.fault_injector = None
        self._yield_flag = False
        self.context_switches = 0

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> Process:
        self.processes.append(process)
        return process

    def switch_to(self, process: Process) -> None:
        """Make ``process`` current, applying mitigation behaviour."""
        if process is self.current:
            return
        if (self.current is not None
                and self.current.status is ProcessStatus.RUNNING):
            self.current.status = ProcessStatus.READY
        self.current = process
        process.status = ProcessStatus.RUNNING
        self.context_switches += 1
        self.core.context_switch(domain=process.domain)

    def note_yield(self, process: Process) -> None:
        """Called by the sched_yield handler."""
        self._yield_flag = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _dispatch_syscall(self, process: Process) -> None:
        number = process.state.regs["rax"]
        handler = self.syscalls.get(number)
        if handler is None:
            raise SystemError_(
                f"{process.name}: unknown syscall {number}")
        handler(self, process)

    def run_slice(self, process: Process, *,
                  max_retired: Optional[int] = None,
                  collect_trace: bool = False,
                  speculate_on_stop: Optional[bool] = None) -> RunResult:
        """Run ``process`` until yield/exit/interrupt.

        Returns the *last* :class:`RunResult`; syscalls other than
        ``sched_yield``/``exit`` are transparently handled and the
        slice continues.
        """
        if not process.alive:
            raise SystemError_(f"{process.name} has exited")
        self.switch_to(process)
        self._yield_flag = False
        remaining = max_retired
        if self.fault_injector is not None:
            # Slice boundary: co-resident noise may evict shared BTB
            # entries, and a cooperative slice may be cut short by an
            # involuntary preemption (the caller sees RETIRE_LIMIT and
            # simply reschedules, as a real attacker loop would).
            self.fault_injector.on_slice(self.core)
            if max_retired is None:
                remaining = self.fault_injector.preempt_limit()
        merged_trace: List[int] = []
        merged_units: List[int] = []
        while True:
            result = self.core.run(
                process.state,
                max_retired=remaining,
                collect_trace=collect_trace,
                speculate_on_stop=speculate_on_stop,
            )
            process.retired += result.retired
            if collect_trace and result.trace:
                merged_trace.extend(result.trace)
                merged_units.extend(result.unit_starts or [])
            if remaining is not None:
                remaining -= result.retired
            if result.reason is StopReason.SYSCALL:
                self._dispatch_syscall(process)
                if not process.alive or self._yield_flag:
                    break
                if remaining is not None and remaining <= 0:
                    result = RunResult(StopReason.RETIRE_LIMIT,
                                       retired=result.retired,
                                       instructions=result.instructions,
                                       cycles=result.cycles)
                    break
                continue
            if result.reason is StopReason.PAGE_FAULT:
                if (self.fault_handler is not None
                        and self.fault_handler(self, process,
                                               result.fault)):
                    continue
                raise result.fault
            break
        if collect_trace:
            result.trace = merged_trace
            result.unit_starts = merged_units
        return result

    def run_until_yield(self, process: Process,
                        **kwargs) -> RunResult:
        """Cooperative slice: run until sched_yield or exit."""
        return self.run_slice(process, **kwargs)

    def single_step(self, process: Process, *,
                    speculate: Optional[bool] = None,
                    collect_trace: bool = False) -> RunResult:
        """Deliver a timer interrupt after exactly one retire unit —
        the SGX-Step / supervisor-attacker primitive (§4.3)."""
        return self.run_slice(process, max_retired=1,
                              collect_trace=collect_trace,
                              speculate_on_stop=speculate)

    def run_to_completion(self, process: Process,
                          **kwargs) -> RunResult:
        """Run (handling yields by continuing) until the process exits
        or halts."""
        while True:
            result = self.run_slice(process, **kwargs)
            if not process.alive or result.reason is StopReason.HALT:
                return result

    # ------------------------------------------------------------------
    # simple round-robin (for multi-process tests)
    # ------------------------------------------------------------------
    def schedule(self, quantum: int = 1000,
                 max_slices: int = 100_000) -> None:
        """Round-robin all processes until every one exits."""
        for _ in range(max_slices):
            runnable = [p for p in self.processes if p.alive]
            if not runnable:
                return
            for process in runnable:
                if not process.alive:
                    continue
                result = self.run_slice(process, max_retired=quantum)
                if result.reason is StopReason.HALT:
                    process.exit(0)
        raise NoRunnableProcess("scheduler exceeded max_slices")
