"""Syscall numbers and the dispatch table.

A tiny Linux-flavoured ABI: the syscall number goes in ``rax``,
arguments in ``rdi``/``rsi``/``rdx``, the return value back in ``rax``.
Only what the paper's workloads need is implemented:

* ``sched_yield`` — the victim-side half of the (simulated) preemptive
  scheduling attack; the paper's own evaluation (§7.2) drives the
  attack with explicit ``sched_yield()`` calls, which is exactly what
  our victims do.
* ``exit`` — terminate the process.
* ``getpid`` — handy for tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .process import Process

SYS_SCHED_YIELD = 24
SYS_EXIT = 60
SYS_GETPID = 39

#: handler(kernel, process) -> None; may change process status.
SyscallHandler = Callable[["Kernel", "Process"], None]


def _sys_sched_yield(kernel: "Kernel", process: "Process") -> None:
    process.state.regs["rax"] = 0
    kernel.note_yield(process)


def _sys_exit(kernel: "Kernel", process: "Process") -> None:
    process.exit(process.state.regs["rdi"])


def _sys_getpid(kernel: "Kernel", process: "Process") -> None:
    process.state.regs["rax"] = process.pid


DEFAULT_SYSCALLS: Dict[int, SyscallHandler] = {
    SYS_SCHED_YIELD: _sys_sched_yield,
    SYS_EXIT: _sys_exit,
    SYS_GETPID: _sys_getpid,
}
