"""Unified observability: counters, spans, and a structured trace.

The paper's results are distributions over micro-architectural events —
BTB insertions and deallocations, false hits, squashes, LBR records —
and the campaigns that produce them add a second population of events
worth counting: probe attempts and retries, job attempts, backoff
delays, watchdog kills.  Before this module each layer grew its own
ad-hoc instrumentation (``BTB.event_log``, ``Core.false_hit_log``);
this package replaces them with one sink shared by every layer:

* **counters** — monotonically increasing integer counts keyed by
  dotted event names (``cpu.btb.insert``, ``core.probe.retries``,
  ``runner.watchdog.kills``);
* **spans** — named wall-clock timings (count + total seconds) for
  coarse phases such as one experiment run;
* **trace** — an optional structured event stream, one JSON object per
  event, serialised as JSON lines.

Determinism contract (see DESIGN.md §11)
----------------------------------------
Counters and trace events record *simulated* facts only; given a fixed
seed they are byte-reproducible (``repro trace`` twice → identical
files).  Spans record host wall-clock time and are therefore excluded
from every digest and from the default ``repro stats`` output.  Events
originating in the campaign *runner* interleave with real scheduling
and are exempt from the byte-stability guarantee — only their per-job
counter totals are deterministic.

Overhead contract
-----------------
Disabled (no sink installed — the default) the instrumented layers pay
one ``is None`` check per *rare* event at most: every hot-loop count is
either derived from totals the layers already maintain or folded in at
run boundaries.  The perf suite's ``telemetry_overhead`` workload gates
the *enabled* cost below 3 %, which bounds the disabled cost from
above (disabled mode does strictly less work at every site).

Usage
-----
>>> from repro import telemetry
>>> with telemetry.session(trace=True) as sink:
...     run_experiment("fig2", RunRequest(fast=True, seed=0))
>>> sink.counters["cpu.btb.dealloc"]
>>> telemetry.render_trace(sink)          # canonical JSONL

Layers capture the active sink at construction time
(:func:`current`), so objects built inside a ``session`` report to it
automatically; :meth:`repro.cpu.core.Core.attach_telemetry` rebinds an
existing core.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "TelemetrySink",
    "count",
    "counters_digest",
    "current",
    "emit",
    "install",
    "merge_counters",
    "render_stats",
    "render_trace",
    "session",
    "trace_digest",
    "uninstall",
]


class TelemetrySink:
    """One observability scope: counters + spans + optional trace.

    Not thread-safe by design — the simulator is single-threaded and
    campaign workers each install their own sink in their own process.
    """

    __slots__ = ("counters", "events", "timings", "trace_enabled",
                 "_seq", "_sources", "_finalized")

    def __init__(self, *, trace: bool = False):
        #: dotted event name -> integer count (deterministic)
        self.counters: Dict[str, int] = {}
        #: structured trace records, in emission order (deterministic)
        self.events: List[dict] = []
        #: span name -> [count, total_seconds] (wall clock — excluded
        #: from digests and from deterministic output)
        self.timings: Dict[str, List[float]] = {}
        self.trace_enabled = bool(trace)
        self._seq = 0
        self._sources: List[Callable[[], Dict[str, int]]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the ``name`` counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def emit(self, name: str, fields: Optional[dict] = None) -> None:
        """Count the event and, with tracing on, append a trace record.

        ``fields`` must hold JSON-serialisable, *deterministic* values
        (addresses, BTB coordinates, kinds) — never wall-clock time.
        """
        self.counters[name] = self.counters.get(name, 0) + 1
        if self.trace_enabled:
            record = {"seq": self._seq, "ev": name}
            if fields:
                record.update(fields)
            self.events.append(record)
        self._seq += 1

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; accumulates into :attr:`timings`."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            entry = self.timings.get(name)
            if entry is None:
                self.timings[name] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    # ------------------------------------------------------------------
    # deferred counter sources (hot layers fold totals at finalize)
    # ------------------------------------------------------------------
    def register(self, source: Callable[[], Dict[str, int]]) -> None:
        """Register a callable returning counter totals to fold in at
        :meth:`finalize` — how per-lookup-hot layers (BTB stats) report
        without paying a per-event dict update."""
        self._sources.append(source)

    def finalize(self) -> "TelemetrySink":
        """Fold registered sources into the counters (idempotent)."""
        if not self._finalized:
            self._finalized = True
            for source in self._sources:
                for name, value in source().items():
                    if value:
                        self.count(name, value)
        return self

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Sorted copy of the (finalized) counters — what campaign
        workers ship back to the manifest."""
        self.finalize()
        return {name: self.counters[name]
                for name in sorted(self.counters)}


# ----------------------------------------------------------------------
# module-level active sink
# ----------------------------------------------------------------------
_SINK: Optional[TelemetrySink] = None


def current() -> Optional[TelemetrySink]:
    """The active sink, or None when telemetry is disabled."""
    return _SINK


def install(sink: TelemetrySink) -> TelemetrySink:
    """Make ``sink`` the active sink (prefer :func:`session`)."""
    global _SINK
    _SINK = sink
    return sink


def uninstall() -> Optional[TelemetrySink]:
    """Disable telemetry; returns the previously active sink."""
    global _SINK
    previous = _SINK
    _SINK = None
    if previous is not None:
        previous.finalize()
    return previous


@contextmanager
def session(*, trace: bool = False) -> Iterator[TelemetrySink]:
    """Install a fresh sink for the duration of the block.

    The sink is finalized (deferred counter sources folded in) on the
    way out, and the previously active sink — usually None — is
    restored, so sessions nest.
    """
    global _SINK
    previous = _SINK
    sink = TelemetrySink(trace=trace)
    _SINK = sink
    try:
        yield sink
    finally:
        _SINK = previous
        sink.finalize()


def count(name: str, n: int = 1) -> None:
    """Count against the active sink, if any (cold paths only)."""
    sink = _SINK
    if sink is not None:
        sink.count(name, n)


def emit(name: str, fields: Optional[dict] = None) -> None:
    """Emit against the active sink, if any (cold paths only)."""
    sink = _SINK
    if sink is not None:
        sink.emit(name, fields)


# ----------------------------------------------------------------------
# canonical serialisation (byte-stable under a fixed seed)
# ----------------------------------------------------------------------
def render_trace(sink: TelemetrySink) -> str:
    """Canonical JSON-lines form of the trace: one event per line,
    sorted keys, no whitespace — byte-identical across runs with the
    same seed."""
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in sink.events]
    return "".join(line + "\n" for line in lines)


def trace_digest(sink: TelemetrySink) -> str:
    return hashlib.sha256(
        render_trace(sink).encode("utf-8")).hexdigest()


def merge_counters(*snapshots: Dict[str, int]) -> Dict[str, int]:
    """Merge counter snapshots into one aggregate, sorted by name.

    The merge is **commutative and associative** — integer addition per
    counter name — so cross-shard aggregation can fold per-job
    snapshots in whatever order shards finish (or resume) and always
    produce the same aggregate, hence the same
    :func:`counters_digest`.  Spans never appear here: snapshots are
    counters-only by construction (:meth:`TelemetrySink.snapshot`), so
    wall-clock timings cannot leak into merged digests.
    """
    merged: Dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0) + int(value)
    return {name: merged[name] for name in sorted(merged)}


def counters_digest(counters: Dict[str, int]) -> str:
    """Stable digest of a counter mapping (order-insensitive)."""
    canonical = json.dumps(counters, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def render_stats(sink: TelemetrySink, *,
                 timings: bool = False) -> str:
    """Printable counter report.

    Deterministic by default; ``timings=True`` appends the wall-clock
    span section (explicitly non-reproducible, never digested).
    """
    sink.finalize()
    names = sorted(sink.counters)
    width = max((len(name) for name in names), default=7)
    lines = ["counter".ljust(width) + "  count",
             "-" * width + "  -----"]
    for name in names:
        lines.append(f"{name.ljust(width)}  {sink.counters[name]}")
    lines.append(f"events traced: {len(sink.events)}")
    lines.append(f"stats digest: {counters_digest(sink.snapshot())}")
    if timings:
        lines.append("")
        lines.append("span timings (wall clock; not reproducible):")
        for name in sorted(sink.timings):
            calls, total = sink.timings[name]
            lines.append(f"  {name}: {int(calls)} call(s), "
                         f"{total:.3f}s total")
    return "\n".join(lines) + "\n"
