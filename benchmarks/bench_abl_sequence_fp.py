"""E15 / §8.3 (implemented future work): sequence-alignment
fingerprinting vs the set metric under measurement noise."""

import random

from conftest import report

from repro.analysis import mean, pct
from repro.fingerprint import (apply_measurement_noise, downsample,
                               generate_corpus, sequence_similarity,
                               set_similarity)


def _evaluate(noise: float, corpus, rng):
    """Mean self-vs-best-impostor margins for both matchers at a
    given noise level."""
    set_margins, seq_margins = [], []
    for victim in corpus[:12]:
        noisy = apply_measurement_noise(
            victim.measured, error_rate=noise, drop_rate=noise,
            seed=rng.randrange(1 << 30))
        noisy_seq = downsample(noisy, 80)
        impostors = rng.sample(corpus, 8)
        set_self = set_similarity(noisy, victim.static_pcs)
        seq_self = sequence_similarity(
            noisy_seq, downsample(sorted(victim.static_pcs), 80))
        set_best = max(set_similarity(noisy, imp.static_pcs)
                       for imp in impostors if imp is not victim)
        seq_best = max(
            sequence_similarity(noisy_seq,
                                downsample(sorted(imp.static_pcs), 80))
            for imp in impostors if imp is not victim)
        set_margins.append(set_self - set_best)
        seq_margins.append(seq_self - seq_best)
    return mean(set_margins), mean(seq_margins)


def test_abl_sequence_fingerprinting(benchmark):
    corpus = generate_corpus(size=120, seed=77)
    rng = random.Random(7)

    def run():
        return {noise: _evaluate(noise, corpus, rng)
                for noise in (0.0, 0.05, 0.15)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for noise, (set_margin, seq_margin) in results.items():
        lines.append(
            f"noise {pct(noise)}: self-vs-impostor margin — "
            f"set metric {set_margin:+.2f}, "
            f"sequence alignment {seq_margin:+.2f}")
    lines.append("both matchers keep positive margins under noise; "
                 "alignment additionally uses ordering (§8.3)")
    report("§8.3 — sequence-alignment fingerprinting ablation",
           "\n".join(lines))
    for set_margin, seq_margin in results.values():
        assert set_margin > 0
        assert seq_margin > 0
