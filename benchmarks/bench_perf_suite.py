"""Perf-regression suite: simulator hot loops, fast path off vs on.

Thin wrapper over :mod:`repro.perf.suite` (the implementation behind
``repro bench``) so the suite lives alongside the other benchmarks and
runs standalone::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--quick] \
        [--out BENCH_perf.json] [--compare BASELINE] [--profile PATH]

Workloads: interp straight-line throughput, core loop throughput, GCD
traversal end-to-end, and one full experiment (campaign unit of work).
Each is timed with the decoded-window fast path forced off and on; the
machine-independent speedup ratios are what the CI ``perf-smoke`` job
gates on (see ``benchmarks/baselines/BENCH_perf_baseline.json``).
"""

import sys

from repro.perf.suite import main

if __name__ == "__main__":
    sys.exit(main())
