"""E6 / §7.2: NV-U leaks the IPP bn_cmp balanced branch (paper: 100 %
over 100 runs)."""

from conftest import report

from repro.analysis import pct
from repro.experiments import run_bncmp_leak


def test_t1_bncmp_leak(benchmark):
    result = benchmark.pedantic(
        lambda: run_bncmp_leak(runs=100, timing_noise=2.0),
        rounds=1, iterations=1)
    report("§7.2 — bn_cmp secret-comparison leak (use case 1)",
           "\n".join([
               f"victim: {result.label}",
               f"runs: {result.runs}",
               f"comparison-direction accuracy: "
               f"{pct(result.accuracy)} (paper: 100%)",
           ]))
    assert result.accuracy >= 0.99
