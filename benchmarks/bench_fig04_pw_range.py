"""E2 / Figure 4: prediction-window range-semantics BTB lookups
(Takeaway 2)."""

from conftest import report

from repro.analysis import series_block
from repro.cpu import generation
from repro.experiments import run_figure4


def test_fig04_pw_range_lookup(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure4(generation("skylake"), iterations=5),
        rounds=1, iterations=1)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"jmp L2 offset: {result.findings['f2_offset']}; "
                 f"mispredict window F1 <= F2+1 reproduced: "
                 f"{result.findings['boundary_correct']}")
    lines.append(f"no-F2 baseline decreases with F1 (fewer nops): "
                 f"{result.findings['baseline_monotonic']}")
    report("Figure 4 — PW range-semantics lookup", "\n".join(lines))
    assert result.findings["boundary_correct"]
    assert result.findings["baseline_monotonic"]
