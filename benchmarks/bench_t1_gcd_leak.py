"""E5 / §7.2 headline result: NV-U leaks the balanced GCD branch in
RSA keygen with -falign-jumps=16 hardening (paper: 99.3 % over 100
runs of ~30 iterations)."""

from conftest import report

from repro.analysis import pct
from repro.experiments import run_gcd_leak


def test_t1_gcd_branch_leak(benchmark):
    result = benchmark.pedantic(
        lambda: run_gcd_leak(runs=100, timing_noise=2.0),
        rounds=1, iterations=1)
    mean_iters = result.total_iterations / result.runs
    report("§7.2 — GCD secret-branch leak (use case 1)", "\n".join([
        f"victim: {result.label}",
        f"runs: {result.runs}, mean loop iterations/run: "
        f"{mean_iters:.1f} (paper: ~30)",
        f"branch-direction accuracy: {pct(result.accuracy)} "
        f"(paper: 99.3%)",
        f"correct: {result.correct_iterations}/"
        f"{result.total_iterations}",
    ]))
    assert result.accuracy > 0.97
