"""E13 / §7.3: macro-fusion is what single-stepping cannot split —
with fusion enabled NV-S misses the fused Jcc PCs; with it disabled,
coverage of the function's executed static PCs is complete."""

from conftest import report

from repro.analysis import pct
from repro.cpu import Core, generation
from repro.core import NvSupervisor
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_gcd_victim
from repro.victims.library import ENCLAVE_DATA_BASE

INPUTS = {"ta": 20, "tb": 12}


def _coverage(fusion_enabled: bool):
    config = generation("coffeelake", fusion_enabled=fusion_enabled)
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    supervisor = NvSupervisor(Kernel(Core(config)))
    trace = supervisor.extract_trace(victim, INPUTS)
    extracted = {step.pc for step in trace.steps
                 if step.pc is not None}
    # executed static PCs under the no-fusion ground truth
    executed = set(victim.ground_truth(INPUTS).trace)
    covered = len(executed & extracted) / len(executed)
    expected = victim.expected_unit_starts(INPUTS, config)
    accuracy = trace.accuracy_against(expected)
    return covered, accuracy, len(executed - extracted)


def test_abl_macro_fusion(benchmark):
    (cov_on, acc_on, missed_on), (cov_off, acc_off, missed_off) = \
        benchmark.pedantic(
            lambda: (_coverage(True), _coverage(False)),
            rounds=1, iterations=1)
    report("§7.3 — macro-fusion ablation", "\n".join([
        f"fusion ON:  executed-PC coverage {pct(cov_on)} "
        f"({missed_on} PCs never measured — fused Jcc targets), "
        f"per-step accuracy {pct(acc_on)}",
        f"fusion OFF: executed-PC coverage {pct(cov_off)} "
        f"({missed_off} missed), per-step accuracy {pct(acc_off)}",
        "paper: 'nearly all incorrectly measured instructions "
        "correspond to macro-fusion structures'",
    ]))
    assert cov_off > cov_on
    assert missed_off <= 2          # the unmeasurable final hlt step
