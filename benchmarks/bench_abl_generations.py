"""E16 / §2.3 footnote: BTB tag truncation across CPU generations —
SkyLake-family aliases at 8 GiB, IceLake only at 16 GiB."""

from conftest import report

from repro.analysis import ascii_table
from repro.experiments import run_generation_sweep


def test_abl_generations(benchmark):
    result = benchmark.pedantic(run_generation_sweep,
                                rounds=1, iterations=1)
    rows = [(name, keep, at_8g, at_16g)
            for name, (keep, at_8g, at_16g) in result.table.items()]
    report("§2.3 footnote — tag truncation per generation",
           ascii_table(("generation", "kept tag bits",
                        "collides @8GiB", "collides @16GiB"), rows))
    assert result.all_correct
