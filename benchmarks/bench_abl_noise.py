"""Ablation: leak accuracy vs LBR timing noise — the probe threshold
is a real classifier, and it degrades gracefully as jitter approaches
the squash penalty (20 cycles)."""

from conftest import report

from repro.analysis import pct
from repro.experiments import run_gcd_leak


def test_abl_timing_noise(benchmark):
    def run():
        return {
            noise: run_gcd_leak(runs=6, timing_noise=noise).accuracy
            for noise in (0.0, 2.0, 6.0, 10.0, 14.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"timing noise sigma={noise:>4.1f} cycles: "
             f"accuracy {pct(accuracy)}"
             for noise, accuracy in results.items()]
    lines.append("squash penalty is 20 cycles; accuracy collapses as "
                 "jitter swamps it")
    report("Ablation — leak accuracy vs timing noise", "\n".join(lines))
    assert results[0.0] > 0.97
    assert results[2.0] > 0.95
    assert results[14.0] < results[0.0]
