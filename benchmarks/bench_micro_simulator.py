"""Micro-benchmarks of the simulation substrate itself: core
throughput, interpreter throughput, BTB lookup rate, NV-Core
prime+probe round cost.  Regression guards for the wall-clock of the
big experiments."""

from repro.core import NvCore, PwRange
from repro.cpu import (BTB, Core, MachineState, generation, interpret)
from repro.isa import Assembler, Kind
from repro.memory import VirtualMemory
from repro.system import Kernel


def _loop_program(iterations=500):
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rcx", iterations)
    asm.label("loop")
    asm.emit("addi8", "rax", 1)
    asm.emit("xor", "rbx", "rax")
    asm.emit("dec", "rcx")
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    return asm.assemble()


def _machine(program):
    memory = VirtualMemory()
    program.load_into(memory)
    state = MachineState(memory, rip=program.entry)
    state.setup_stack(0x7FFF0000)
    return state


def test_micro_core_throughput(benchmark):
    program = _loop_program()
    core = Core(generation("coffeelake"))

    def run():
        state = _machine(program)
        return core.run(state).instructions

    instructions = benchmark(run)
    assert instructions > 2000


def test_micro_interp_throughput(benchmark):
    program = _loop_program()

    def run():
        return interpret(_machine(program)).instructions

    instructions = benchmark(run)
    assert instructions > 2000


def test_micro_btb_lookup(benchmark):
    btb = BTB(generation("skylake"))
    for index in range(64):
        btb.allocate(0x400000 + index * 64 + 17, 0x999,
                     Kind.DIRECT_JUMP)

    def run():
        hits = 0
        for index in range(256):
            if btb.lookup(0x400000 + index * 16) is not None:
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_micro_prime_probe_round(benchmark):
    kernel = Kernel(Core(generation("coffeelake")))
    nv = NvCore(kernel)
    session = nv.monitor(PwRange(0x400400, 0x400420).split(2))

    def round_trip():
        session.prime()
        return session.probe()

    matched = benchmark(round_trip)
    assert matched == [False, False]
