"""E14 / §8.2: mitigations that actually work — full BTB flush on
context switch, BTB domain partitioning, and data-oblivious code."""

from conftest import report

from repro.analysis import ascii_table, pct
from repro.experiments import run_hardware_grid, run_oblivious


def test_abl_hardware_mitigations(benchmark):
    grid = benchmark.pedantic(
        lambda: run_hardware_grid(runs=12, timing_noise=2.0),
        rounds=1, iterations=1)
    rows = [(name, pct(result.accuracy),
             "LEAKS" if result.accuracy > 0.9 else "holds")
            for name, result in grid.items()]
    report("§8.2 — hardware mitigations vs NV-U",
           ascii_table(("mitigation", "accuracy", "verdict"), rows))
    assert grid["stock"].accuracy > 0.9
    assert grid["ibrs+ibpb"].accuracy > 0.9
    assert grid["btb-flush-on-switch"].accuracy < 0.6
    assert grid["btb-partitioning"].accuracy < 0.6


def test_abl_data_oblivious(benchmark):
    result = benchmark.pedantic(lambda: run_oblivious(keys=6),
                                rounds=1, iterations=1)
    report("§8.2 — data-oblivious GCD vs NV-U", "\n".join([
        f"distinct observation sequences across secrets: "
        f"{result.distinct_observations} (1 = no information)",
        f"information rate: {pct(result.information_rate)}",
        "paper: data-oblivious programming is the only reliable "
        "software mitigation",
    ]))
    assert result.information_rate == 0.0
