"""E10 / Figure 12 + §7.3: identify GCD and bn_cmp among a function
corpus using only NV-S-extracted PC traces of encrypted enclaves.

Corpus size defaults to 2,000 (paper: 175,168); scale with
NV_CORPUS_SIZE.
"""

from conftest import corpus_size, report

from repro.analysis import pct
from repro.experiments import run_figure12


def test_fig12_fingerprint_corpus(benchmark):
    size = corpus_size()
    result = benchmark.pedantic(
        lambda: run_figure12(corpus_size=size),
        rounds=1, iterations=1)
    top5_gcd = ", ".join(pct(v) for v in result.top_vs_gcd[:5])
    top5_cmp = ", ".join(pct(v) for v in result.top_vs_bncmp[:5])
    report("Figure 12 — function fingerprinting", "\n".join([
        f"corpus: {result.corpus_size} functions "
        f"(paper: 175,168; NV_CORPUS_SIZE to scale)",
        f"GCD:    self-similarity {pct(result.gcd.self_similarity)} "
        f"(paper: 75.8%), extraction used "
        f"{result.gcd.extraction_runs} enclave runs",
        f"        best corpus impostors vs GCD ref: {top5_gcd}",
        f"        GCD identified as top-1: {result.gcd_identified}",
        f"bn_cmp: self-similarity "
        f"{pct(result.bn_cmp.self_similarity)} (paper: 88.2%), "
        f"extraction used {result.bn_cmp.extraction_runs} runs",
        f"        best corpus impostors vs bn_cmp ref: {top5_cmp}",
        f"        bn_cmp identified as top-1: "
        f"{result.bncmp_identified}",
        "note: our self-similarity exceeds the paper's because the "
        "set metric ignores fusion-dropped PCs and the simulator's "
        "extraction is nearly error-free; the identification result "
        "(reference on top with a wide gap) is the reproduced shape",
    ]))
    assert result.gcd_identified
    assert result.bncmp_identified
