"""E8 / Figure 8 + §5: the software-defense arms race — balancing,
-falign-jumps, CFR, balancing+CFR all fail against NV-U."""

from conftest import report

from repro.analysis import ascii_table, pct
from repro.experiments import run_defense_grid


def test_fig08_software_defenses(benchmark):
    grid = benchmark.pedantic(
        lambda: run_defense_grid(runs=15, timing_noise=2.0),
        rounds=1, iterations=1)
    rows = [(name, result.runs, pct(result.accuracy),
             "LEAKS" if result.accuracy > 0.9 else "holds")
            for name, result in grid.items()]
    report("Figure 8 / §5 — software defenses vs NV-U",
           ascii_table(("defense", "runs", "accuracy", "verdict"),
                       rows))
    for name, result in grid.items():
        assert result.accuracy > 0.9, name
