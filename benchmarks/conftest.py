"""Shared benchmark infrastructure.

Every benchmark registers a human-readable findings report via
:func:`report`; a terminal-summary hook prints them all at the end of
the run, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
both the timing table and the reproduced paper numbers.

Set ``NV_REPORT_JSON=<path>`` to additionally export the findings as
JSON — written through the campaign runner's atomic writer, so a
killed benchmark run never leaves a truncated file behind.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []


def report(title: str, body: str) -> None:
    """Record a findings block to print after the run."""
    _REPORTS.append((title, body))


def corpus_size(default: int = 2000) -> int:
    """Benchmark corpus size; override with NV_CORPUS_SIZE
    (paper: 175,168)."""
    return int(os.environ.get("NV_CORPUS_SIZE", str(default)))


def _export_json(path: str) -> None:
    from repro.runner import atomic_write_json
    payload = {
        "reports": [
            {
                "title": title,
                "body": body,
                "digest": hashlib.sha256(body.encode()).hexdigest(),
            }
            for title, body in _REPORTS
        ],
    }
    atomic_write_json(path, payload)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    json_path = os.environ.get("NV_REPORT_JSON")
    if json_path:
        _export_json(json_path)
        terminalreporter.write_line(
            f"findings JSON written atomically to {json_path}")
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("NightVision reproduction — experiment findings")
    write("=" * 70)
    for title, body in _REPORTS:
        write("")
        write(f"--- {title} ---")
        for line in body.splitlines():
            write(line)
