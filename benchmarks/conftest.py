"""Shared benchmark infrastructure.

Every benchmark registers a human-readable findings report via
:func:`report`; a terminal-summary hook prints them all at the end of
the run, so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
both the timing table and the reproduced paper numbers.
"""

from __future__ import annotations

import os
from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []


def report(title: str, body: str) -> None:
    """Record a findings block to print after the run."""
    _REPORTS.append((title, body))


def corpus_size(default: int = 2000) -> int:
    """Benchmark corpus size; override with NV_CORPUS_SIZE
    (paper: 175,168)."""
    return int(os.environ.get("NV_CORPUS_SIZE", str(default)))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("NightVision reproduction — experiment findings")
    write("=" * 70)
    for title, body in _REPORTS:
        write("")
        write(f"--- {title} ---")
        for line in body.splitlines():
            write(line)
