"""Ablation: the two probe classifiers — the paper's pure
elapsed-cycles thresholding vs the hybrid (cycles + LBR MISPRED bit)
detector — on the use-case-1 workload."""

from conftest import report

from repro.analysis import pct
from repro.core import ControlFlowLeakAttack
from repro.cpu import Core, generation
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_gcd_victim, generate_keys


def _accuracy(detector: str) -> float:
    config = generation("coffeelake", timing_noise=2.0)
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2, align_jumps=16),
        nlimbs=2, with_yield=True)
    attack = ControlFlowLeakAttack(Kernel(Core(config)), victim,
                                   detector=detector)
    total = correct = 0
    for key in generate_keys(8, seed=51):
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        truth = attack.ground_truth(inputs)
        accuracy = attack.attack(inputs).accuracy_against(truth)
        total += len(truth)
        correct += round(accuracy * len(truth))
    return correct / total


def test_abl_detectors(benchmark):
    results = benchmark.pedantic(
        lambda: {d: _accuracy(d) for d in ("cycles", "hybrid")},
        rounds=1, iterations=1)
    report("Ablation — probe detectors", "\n".join([
        f"cycles-only (paper §2.3 methodology): "
        f"{pct(results['cycles'])}",
        f"hybrid (cycles + LBR MISPRED bit):    "
        f"{pct(results['hybrid'])}",
        "pure cycle thresholds blur at chained-PW boundaries under "
        "jitter; the MISPRED bit disambiguates the attribution",
    ]))
    assert results["cycles"] > 0.7
    assert results["hybrid"] > 0.95
    assert results["hybrid"] >= results["cycles"]
