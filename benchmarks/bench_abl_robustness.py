"""Ablation: attack accuracy vs injected fault rate, naive vs
resilient measurement (the :mod:`repro.faults` harness driving the
:class:`~repro.core.measurement.MeasurementPolicy` stack).

Two curves per sweep:

* naive — the fail-fast probe path, no retry/voting/constraints;
* resilient — calibration re-sampling, weak-hit voting, structural
  constraint resolution, bounded retry, confidence-tagged degradation.

The acceptance bar mirrors ISSUE.md: under the acceptance fault plan
(5 % LBR drops, 2 % spurious evictions, 5 % multi-steps) the resilient
GCD leak stays >= 95 % accurate while the naive path is measurably
worse; the naive NV-S extraction typically dies outright (a dropped
calibration record aborts the session) where the resilient one still
returns a confidence-tagged fingerprint.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_abl_robustness.py [--smoke]

``--smoke`` runs a tiny two-point sweep (CI-friendly, ~10 s).
"""

import argparse
import sys

try:
    from conftest import report    # pytest: terminal-summary buffer
except ImportError:                # standalone: no conftest needed
    report = None

from repro.analysis import degradation_block, pct
from repro.experiments import (run_fingerprint_robustness,
                               run_leak_robustness)


def _print_report(title, body):
    """Standalone output: conftest's ``report`` only buffers for the
    pytest terminal-summary hook, so ``main`` prints directly."""
    print(f"--- {title} ---")
    print(body)


def _leak_sweep(*, runs, factors, seed=7):
    result = run_leak_robustness(runs=runs, factors=factors, seed=seed)
    body = [degradation_block(
        f"{result.label} (plan: {result.plan_name})",
        result.factors, result.curves())]
    body.append(f"resilient floor {pct(result.resilient_floor)} vs "
                f"naive floor {pct(result.naive_floor)}; mean probe "
                f"confidence at max fault scale "
                f"{result.resilient[-1].confidence:.3f}")
    return result, "\n".join(body)


def _fingerprint_sweep(*, factors, seed=7):
    result = run_fingerprint_robustness(factors=factors, seed=seed)
    body = [degradation_block(
        f"{result.label} (plan: {result.plan_name})",
        result.factors, result.curves())]
    failures = sum(p.failed for p in result.naive)
    body.append(f"naive extractions failed outright: "
                f"{failures}/{len(result.naive)}; resilient all "
                f"returned results "
                f"({sum(p.failed for p in result.resilient)} failed)")
    return result, "\n".join(body)


def test_abl_robustness_leak(benchmark):
    result, body = benchmark.pedantic(
        lambda: _leak_sweep(runs=8, factors=(0.0, 1.0, 2.0, 3.0)),
        rounds=1, iterations=1)
    report("Ablation — GCD leak accuracy vs fault rate", body)
    # Acceptance plan (factor 1.0): resilient >= 95 %, naive lower.
    naive_x1 = result.naive[1].accuracy
    resilient_x1 = result.resilient[1].accuracy
    assert resilient_x1 >= 0.95
    assert resilient_x1 > naive_x1
    # The gap widens as faults scale up.
    assert result.resilient_floor > result.naive_floor


def test_abl_robustness_fingerprint(benchmark):
    result, body = benchmark.pedantic(
        lambda: _fingerprint_sweep(factors=(0.0, 1.0, 2.0)),
        rounds=1, iterations=1)
    report("Ablation — fingerprint self-similarity vs fault rate",
           body)
    # Under faults the naive extraction dies in calibration; the
    # resilient one degrades but still produces a fingerprint.
    assert any(p.failed for p in result.naive)
    assert not any(p.failed for p in result.resilient)
    assert all(p.accuracy > 0.3 for p in result.resilient)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="robustness ablation (naive vs resilient "
                    "measurement under injected faults)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny two-point leak sweep (~10 s)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if args.smoke:
        _, body = _leak_sweep(runs=3, factors=(0.0, 1.0),
                              seed=args.seed)
        _print_report("Robustness ablation (smoke)", body)
        return 0
    _, leak_body = _leak_sweep(runs=8, factors=(0.0, 1.0, 2.0, 3.0),
                               seed=args.seed)
    _print_report("GCD leak accuracy vs fault rate", leak_body)
    _, fp_body = _fingerprint_sweep(factors=(0.0, 1.0, 2.0),
                                    seed=args.seed)
    _print_report("Fingerprint self-similarity vs fault rate", fp_body)
    return 0


if __name__ == "__main__":
    sys.exit(main())
