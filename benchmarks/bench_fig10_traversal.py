"""E9 / Figure 10: PW traversal structure — run counts for the
paper's fixed 128/N sweep vs the locality-adaptive sweep, plus
byte-granular extraction accuracy for both."""

from conftest import report

from repro.analysis import pct
from repro.experiments import run_figure10


def test_fig10_pw_traversal(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure10(pws_per_call=8,
                             inputs={"ta": 12, "tb": 8}),
        rounds=1, iterations=1)
    report("Figure 10 — PW traversal (N=8 PWs per NV-Core call)",
           "\n".join([
               f"dynamic steps measured: {result.steps}",
               f"pass-1 full-page sweep budget (128/N): "
               f"{result.expected_sweep_runs} enclave re-executions",
               f"paper-strategy total runs: {result.paper_runs}, "
               f"accuracy {pct(result.paper_accuracy)}",
               f"adaptive-strategy total runs: {result.adaptive_runs},"
               f" accuracy {pct(result.adaptive_accuracy)}",
           ]))
    assert result.paper_accuracy > 0.97
    assert result.adaptive_accuracy > 0.97
    assert result.adaptive_runs <= result.paper_runs
