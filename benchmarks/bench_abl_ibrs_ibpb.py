"""E7 / §4.1: IBRS/IBPB (Intel's deployed Spectre-v2 mitigations) do
not affect NightVision — they only invalidate indirect-branch
entries."""

from conftest import report

from repro.analysis import pct
from repro.experiments import run_defense_grid


def test_abl_ibrs_ibpb(benchmark):
    grid = benchmark.pedantic(
        lambda: run_defense_grid(runs=10, timing_noise=2.0,
                                 ibrs=True),
        rounds=1, iterations=1)
    lines = [f"{name + ' + IBRS/IBPB':28s} "
             f"accuracy={pct(result.accuracy)}"
             for name, result in grid.items()]
    lines.append("paper §4.1: IBRS/IBPB leave direct-jump BTB entries "
                 "alone -> attack unaffected")
    report("§4.1 — IBRS/IBPB ablation", "\n".join(lines))
    for name, result in grid.items():
        assert result.accuracy > 0.9, name
