"""E4 / Figure 7: the optimized (chained-PW) NV-Core monitors N ranges
per victim run and still localizes the touched range."""

from conftest import report

from repro.experiments import run_figure7


def test_fig07_chained_pws(benchmark):
    result = benchmark.pedantic(lambda: run_figure7(blocks=4),
                                rounds=1, iterations=1)
    lines = [f"victim in block {index}: matches={vector}"
             for index, vector in result.localization.items()]
    lines.append(f"localization correct: {result.localization_correct}")
    lines.append(f"victim runs to cover 4 ranges: single-PW="
                 f"{result.single_pw_rounds}, chained="
                 f"{result.chained_rounds}")
    report("Figure 7 — chained-PW optimized NV-Core", "\n".join(lines))
    assert result.localization_correct
