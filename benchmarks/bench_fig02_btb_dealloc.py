"""E1 / Figure 2: non-control-transfer instructions deallocate BTB
entries (Takeaway 1)."""

from conftest import report

from repro.analysis import series_block
from repro.cpu import generation
from repro.experiments import run_figure2


def test_fig02_btb_deallocation(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure2(generation("skylake"), iterations=5),
        rounds=1, iterations=1)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"collision window (F2-F1): "
                 f"{result.findings['gap_deltas']}")
    lines.append(f"paper boundary F2 < F1+2 reproduced: "
                 f"{result.findings['boundary_correct']}")
    report("Figure 2 — BTB deallocation by non-branches",
           "\n".join(lines))
    assert result.findings["boundary_correct"]
