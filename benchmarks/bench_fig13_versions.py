"""E11 / Figure 13 (left): GCD fingerprint similarity across mbedTLS
versions 2.5–3.1 — block structure by source version."""

from conftest import report

from repro.analysis import ascii_table
from repro.experiments import run_figure13_versions, version_groups


def test_fig13_versions(benchmark):
    matrix = benchmark.pedantic(run_figure13_versions,
                                rounds=1, iterations=1)
    headers = ("victim \\ ref",) + matrix.labels
    rows = [
        (victim,) + tuple(f"{matrix.value(victim, ref):.2f}"
                          for ref in matrix.labels)
        for victim in matrix.labels
    ]
    groups = version_groups()
    lines = [ascii_table(headers, rows)]
    lines.append(f"same-source groups: "
                 f"{ {g: list(m) for g, m in groups.items()} }")
    lines.append(f"within-group minimum: "
                 f"{matrix.diagonal_min():.2f}; cross-group maximum: "
                 f"{matrix.off_diagonal_max(groups):.2f}")
    report("Figure 13 (left) — similarity across mbedTLS versions",
           "\n".join(lines))
    assert matrix.diagonal_min() > matrix.off_diagonal_max(groups)
