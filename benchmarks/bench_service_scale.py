"""Service-scale benchmark: scheduler overhead and recovery latency
of the sharded campaign service (:mod:`repro.service`).

Two questions, answered with deterministic selftest workloads so the
numbers isolate the *scheduler*, not the experiments:

* **scale-out overhead** — wall-clock per job as the same campaign
  spreads across 1, 2, and 4 shard fault domains.  Sharding pays a
  process-group launch + merge cost; it must stay a small constant,
  not grow with job count;
* **recovery latency** — how long a campaign that loses a whole
  shard (SIGKILLed process group, breaker threshold 1) takes to
  quarantine, reassign, and still converge to the clean aggregate
  digest — the robustness headline of DESIGN.md §12.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_service_scale.py [--smoke]

``--smoke`` runs a reduced matrix (CI-friendly, a few seconds).
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

try:
    from conftest import report    # pytest: terminal-summary buffer
except ImportError:                # standalone: no conftest needed
    report = None

from repro.analysis import ascii_table
from repro.runner.jobs import JobSpec, KIND_SELFTEST
from repro.service import (CHAOS_KILL_SHARD, ServiceChaos,
                           run_service_campaign)


def _specs(count, program="work:50:0.01"):
    return [JobSpec(job_id=f"j{index:03d}", kind=KIND_SELFTEST,
                    name=program, seed=0, timeout_s=60.0,
                    max_attempts=2)
            for index in range(count)]


def _aggregate_digest(runs_dir, campaign_id):
    path = Path(runs_dir) / campaign_id / "aggregate.json"
    return json.loads(path.read_text())["digest"]


def _scale_sweep(*, jobs, shard_counts, seed=7):
    rows = []
    digests = set()
    with tempfile.TemporaryDirectory() as runs_dir:
        for shards in shard_counts:
            started = time.monotonic()
            manifest = run_service_campaign(
                _specs(jobs), runs_dir,
                campaign_id=f"scale-{shards}", seed=seed,
                shards=shards)
            elapsed = time.monotonic() - started
            assert manifest.status == "COMPLETED", manifest.status
            digests.add(_aggregate_digest(runs_dir,
                                          f"scale-{shards}"))
            rows.append((shards, jobs, f"{elapsed:.2f}s",
                         f"{1000 * elapsed / jobs:.0f}ms"))
    # the aggregate digest is layout-independent: every shard count
    # must merge to the same bytes
    assert len(digests) == 1, digests
    return ascii_table(("shards", "jobs", "wall", "per-job"), rows)


def _recovery_probe(*, jobs, seed=7):
    # slow enough that the kill lands while the victim shard is
    # still mid-flight
    specs = _specs(jobs, program="work:50:0.2")
    with tempfile.TemporaryDirectory() as runs_dir:
        started = time.monotonic()
        run_service_campaign(specs, runs_dir,
                             campaign_id="clean", seed=seed, shards=2)
        clean_s = time.monotonic() - started
        clean_digest = _aggregate_digest(runs_dir, "clean")

        chaos = ServiceChaos(mode=CHAOS_KILL_SHARD, strikes=1,
                             delay_s=0.1, seed=1, target="s00")
        started = time.monotonic()
        manifest = run_service_campaign(
            specs, runs_dir, campaign_id="chaos", seed=seed,
            shards=2, options={"breaker_threshold": 1}, chaos=chaos)
        chaos_s = time.monotonic() - started
        assert manifest.status == "COMPLETED", manifest.status
        assert manifest.shards["s00"].status == "QUARANTINED"
        assert _aggregate_digest(runs_dir, "chaos") == clean_digest
    overhead = chaos_s - clean_s
    return (f"clean {clean_s:.2f}s vs shard-loss {chaos_s:.2f}s "
            f"(+{overhead:.2f}s to quarantine, reassign, and "
            f"converge byte-identically)")


def test_service_scale_overhead(benchmark):
    body = benchmark.pedantic(
        lambda: _scale_sweep(jobs=12, shard_counts=(1, 2, 4)),
        rounds=1, iterations=1)
    report("Service — scale-out overhead per fault domain", body)


def test_service_recovery_latency(benchmark):
    body = benchmark.pedantic(lambda: _recovery_probe(jobs=8),
                              rounds=1, iterations=1)
    report("Service — shard-loss recovery latency", body)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded service scheduler overhead + recovery "
                    "latency")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced matrix (CI-friendly)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if args.smoke:
        print("--- Service scale (smoke) ---")
        print(_scale_sweep(jobs=6, shard_counts=(1, 2),
                           seed=args.seed))
        print("--- Recovery (smoke) ---")
        print(_recovery_probe(jobs=4, seed=args.seed))
        return 0
    print("--- Service scale-out overhead ---")
    print(_scale_sweep(jobs=24, shard_counts=(1, 2, 4),
                       seed=args.seed))
    print("--- Shard-loss recovery latency ---")
    print(_recovery_probe(jobs=12, seed=args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
