"""E3 / Figure 5: NV-Core detects all four attacker/victim PW overlap
scenarios (and stays silent otherwise)."""

from conftest import report

from repro.experiments import run_figure5


def test_fig05_overlap_scenarios(benchmark):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    lines = [f"{name:22s} detected={detected}"
             for name, detected in result.detections.items()]
    lines.append(f"all four overlap cases + negative control correct: "
                 f"{result.all_correct}")
    report("Figure 5 — PW overlap scenarios", "\n".join(lines))
    assert result.all_correct
