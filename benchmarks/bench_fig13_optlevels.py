"""E12 / Figure 13 (right): GCD fingerprint similarity across
-O0/-O2/-O3 — similarity degrades off the diagonal, so the attacker
must prepare per-configuration references."""

from conftest import report

from repro.analysis import ascii_table
from repro.experiments import run_figure13_optlevels


def test_fig13_optlevels(benchmark):
    matrix = benchmark.pedantic(run_figure13_optlevels,
                                rounds=1, iterations=1)
    headers = ("victim \\ ref",) + matrix.labels
    rows = [
        (victim,) + tuple(f"{matrix.value(victim, ref):.2f}"
                          for ref in matrix.labels)
        for victim in matrix.labels
    ]
    lines = [ascii_table(headers, rows),
             f"diagonal minimum {matrix.diagonal_min():.2f} vs "
             f"off-diagonal maximum {matrix.off_diagonal_max():.2f}"]
    report("Figure 13 (right) — similarity across optimization levels",
           "\n".join(lines))
    assert matrix.diagonal_min() > matrix.off_diagonal_max()
